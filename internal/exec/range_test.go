package exec

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/index"
	"repro/internal/storage"
)

// rangeFixture builds a table with keys 0..rows-1 (sequential), a partial
// index covering [0, covHi], and an Index Buffer.
func rangeFixture(t *testing.T, rows int, covHi int64, structure core.StructureFactory) Access {
	t.Helper()
	d := buffer.NewSimDisk()
	pool, err := buffer.NewPool(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "pad", Kind: storage.KindString},
	)
	tb := heap.NewTable(schema, pool)
	pad := strings.Repeat("p", 700)
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(storage.NewTuple(iv(int64(i)), storage.StringValue(pad))); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.NewPartial("k", 0, index.IntRange(0, covHi))
	uncovered := make([]int, tb.NumPages())
	_ = tb.Scan(func(rid storage.RID, tu storage.Tuple) error {
		if !ix.Add(tu.Value(0), rid) {
			uncovered[rid.Page]++
		}
		return nil
	})
	space := core.NewSpace(core.Config{IMax: 10000, P: 100, NewStructure: structure})
	buf, err := space.CreateBuffer("t.k", uncovered)
	if err != nil {
		t.Fatal(err)
	}
	return Access{Table: tb, Column: 0, Index: ix, Buffer: buf, Space: space}
}

func keysOf(t *testing.T, ms []Match) map[int64]bool {
	t.Helper()
	out := map[int64]bool{}
	for _, m := range ms {
		k := m.Tuple.Value(0).Int64()
		if out[k] {
			t.Fatalf("duplicate key %d in result", k)
		}
		out[k] = true
	}
	return out
}

func TestRangeCoveredHit(t *testing.T) {
	a := rangeFixture(t, 300, 99, nil)
	got, stats, err := Range(context.Background(), a, iv(10), iv(20))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PartialHit {
		t.Error("fully covered range should hit the partial index")
	}
	keys := keysOf(t, got)
	if len(keys) != 11 {
		t.Fatalf("matches = %d, want 11", len(keys))
	}
	for k := int64(10); k <= 20; k++ {
		if !keys[k] {
			t.Errorf("missing key %d", k)
		}
	}
}

func TestRangeStraddlingCoverageMisses(t *testing.T) {
	a := rangeFixture(t, 300, 99, nil)
	// [90, 110] straddles the coverage edge: must NOT be a hit even
	// though part of it is covered.
	got, stats, err := Range(context.Background(), a, iv(90), iv(110))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartialHit {
		t.Error("straddling range must not hit the partial index")
	}
	if len(keysOf(t, got)) != 21 {
		t.Errorf("matches = %d, want 21", len(got))
	}
	if stats.EntriesAdded == 0 {
		t.Error("miss should build the buffer")
	}
}

func TestRangeSecondQuerySkips(t *testing.T) {
	a := rangeFixture(t, 300, 99, nil)
	if _, _, err := Range(context.Background(), a, iv(150), iv(160)); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Range(context.Background(), a, iv(200), iv(230))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesSkipped != a.Table.NumPages() {
		t.Errorf("skipped %d of %d pages", stats.PagesSkipped, a.Table.NumPages())
	}
	if len(keysOf(t, got)) != 31 {
		t.Errorf("matches = %d, want 31", len(got))
	}
	if stats.BufferMatches != 31 {
		t.Errorf("buffer matches = %d, want all 31", stats.BufferMatches)
	}
}

func TestRangeEmptyAndInverted(t *testing.T) {
	a := rangeFixture(t, 100, 49, nil)
	got, stats, err := Range(context.Background(), a, iv(20), iv(10)) // inverted
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || stats.Matches != 0 {
		t.Error("inverted range should be empty")
	}
	got, _, err = Range(context.Background(), a, iv(1000), iv(2000)) // beyond the data
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("out-of-domain range returned %d rows", len(got))
	}
}

func TestRangeNoIndexNoBuffer(t *testing.T) {
	a := rangeFixture(t, 200, 99, nil)
	a.Index = nil
	a.Buffer = nil
	a.Space = nil
	got, stats, err := Range(context.Background(), a, iv(50), iv(60))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullScan || stats.PagesRead != a.Table.NumPages() {
		t.Errorf("stats = %+v", stats)
	}
	if len(keysOf(t, got)) != 11 {
		t.Errorf("matches = %d", len(got))
	}
}

// TestRangeAllStructures checks that tree- and hash-backed buffers give
// identical range results (the hash path exercises the unordered
// enumeration fallback).
func TestRangeAllStructures(t *testing.T) {
	for name, f := range map[string]core.StructureFactory{
		"btree":   core.NewBTreeStructure,
		"csbtree": core.NewCSBTreeStructure,
		"hash":    core.NewHashStructure,
	} {
		t.Run(name, func(t *testing.T) {
			a := rangeFixture(t, 300, 99, f)
			if _, _, err := Range(context.Background(), a, iv(120), iv(130)); err != nil { // build
				t.Fatal(err)
			}
			got, stats, err := Range(context.Background(), a, iv(140), iv(180))
			if err != nil {
				t.Fatal(err)
			}
			keys := keysOf(t, got)
			if len(keys) != 41 {
				t.Fatalf("matches = %d, want 41", len(keys))
			}
			for k := int64(140); k <= 180; k++ {
				if !keys[k] {
					t.Errorf("missing key %d", k)
				}
			}
			if stats.PagesSkipped == 0 {
				t.Error("no skips on second range query")
			}
		})
	}
}

// TestRangeRandomizedGroundTruth compares random range queries against a
// naive scan while the buffer builds and serves.
func TestRangeRandomizedGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := rangeFixture(t, 400, 99, nil)
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(450)
		hi := lo + rng.Int63n(60)
		want := map[int64]bool{}
		for k := lo; k <= hi && k < 400; k++ {
			if k >= 0 {
				want[k] = true
			}
		}
		got, _, err := Range(context.Background(), a, iv(lo), iv(hi))
		if err != nil {
			t.Fatal(err)
		}
		keys := keysOf(t, got)
		if len(keys) != len(want) {
			t.Fatalf("query %d [%d,%d]: %d matches, want %d", q, lo, hi, len(keys), len(want))
		}
		for k := range want {
			if !keys[k] {
				t.Fatalf("query %d: missing key %d", q, k)
			}
		}
	}
}
