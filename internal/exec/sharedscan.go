package exec

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// This file implements scan sharing: one pass of the paper's Algorithm 1
// answering a whole batch of queries on the same table and column.
//
// A burst of partial-index misses — exactly the workload the Index
// Buffer exists to accelerate — would otherwise run one exclusive
// indexing scan per query. Cooperative scans are the standard cure
// (Graefe et al., "Concurrency Control for Adaptive Indexing", make the
// same move for database cracking): the batch scans the heap once,
// demultiplexes matching tuples to every attached query, and performs
// the buffer maintenance (page selection, BeginPage/AddEntry) exactly
// once. The engine's admission layer decides which queries form a batch;
// this file only executes one.

// SharedQuery is one predicate attached to a shared scan: the equality
// query column = Lo when Equality is set, else the range
// Lo <= column <= Hi. Ctx (nil means context.Background) cancels only
// this query: the scan drops the query's demux slot at the next page
// boundary and keeps serving the other attachees; the pass itself aborts
// early only once every attached query has been canceled.
type SharedQuery struct {
	Lo, Hi   storage.Value
	Equality bool
	Ctx      context.Context
}

// matches reports whether a tuple value satisfies the query's predicate.
func (q *SharedQuery) matches(v storage.Value) bool {
	if q.Equality {
		return v.Equal(q.Lo)
	}
	return v.Compare(q.Lo) >= 0 && v.Compare(q.Hi) <= 0
}

// SharedOutcome is one attached query's result: its matches, its own
// QueryStats, and its error (which may be the query's ctx error while
// the rest of the batch succeeded).
type SharedOutcome struct {
	Matches []Match
	Stats   QueryStats
	Err     error
}

// scanState is the per-query demux bookkeeping of one shared pass.
type scanState struct {
	ctx    context.Context
	seen   pageSet
	active bool // attached to the table scan; false once canceled/failed
}

// pageSet tracks the distinct heap pages one query has fetched, so that
// PagesRead counts each page once per query no matter how many execution
// stages (buffer materialization, table scan, skipped-page index
// recovery) touch it — a page fetched twice must not inflate the logical
// I/O the paper's runtime curves are shaped by.
type pageSet map[storage.PageID]bool

// read charges page p to stats unless the query already read it.
func (s pageSet) read(stats *QueryStats, p storage.PageID) {
	if !s[p] {
		s[p] = true
		stats.PagesRead++
	}
}

// ExecuteShared answers a batch of queries on the same table and column
// with at most one Algorithm-1 pass. Per query it re-dispatches on the
// state it finds — a predicate the partial index now covers is served
// from the index, an empty range is answered for free — so callers may
// attach queries planned before an index redefinition. Buffer
// maintenance runs exactly once for the batch; the scan-wide maintenance
// counters (PagesSelected, EntriesAdded) are attributed to the batch's
// first scanning query so that sums over per-query stats equal the work
// actually performed. Every outcome carries a Duration, error or not.
//
// The caller must hold the owning table's write lock whenever the batch
// can mutate the Index Buffer — the same contract as a private indexing
// scan. A batch of size one is exactly the old single-query execution;
// Equal and Range are wrappers over it.
func ExecuteShared(a Access, qs []SharedQuery) []SharedOutcome {
	start := time.Now()
	outs := make([]SharedOutcome, len(qs))
	defer func() {
		elapsed := time.Since(start)
		for i := range outs {
			outs[i].Stats.Duration = elapsed
		}
	}()

	states := make([]scanState, len(qs))
	var scanQ []int // indices of the queries that need the table scan
	for i := range qs {
		q := &qs[i]
		st := &states[i]
		st.ctx = q.Ctx
		if st.ctx == nil {
			st.ctx = context.Background()
		}
		st.seen = pageSet{}
		outs[i].Stats.Key = q.Lo
		if !q.Equality && q.Hi.Compare(q.Lo) < 0 {
			continue // empty range: answered without any access
		}
		hit := false
		if a.Index != nil {
			if q.Equality {
				hit = a.Index.Covers(q.Lo)
			} else {
				hit = a.Index.CoversRange(q.Lo, q.Hi)
			}
		}
		outs[i].Stats.PartialHit = hit
		if a.Space != nil {
			// Table II: every attached query advances the LRU-K histories
			// individually, exactly as if it had run alone.
			a.Space.OnQuery(a.Buffer, hit)
		}
		if hit {
			var rids []storage.RID
			if q.Equality {
				rids = a.Index.Lookup(q.Lo)
			} else {
				rids = a.Index.LookupRange(q.Lo, q.Hi)
			}
			m, err := fetchRIDs(a, rids, &outs[i].Stats, st.seen)
			if err != nil {
				outs[i].Err = err
				continue
			}
			outs[i].Matches = m
			outs[i].Stats.Matches = len(m)
			continue
		}
		st.active = true
		scanQ = append(scanQ, i)
	}
	if len(scanQ) == 0 {
		return outs
	}
	if a.Buffer == nil {
		sharedFullScan(a, qs, outs, states, scanQ)
	} else {
		sharedIndexingScan(a, qs, outs, states, scanQ)
	}
	return outs
}

// pollCancel deactivates attached queries whose context expired and
// reports whether any query remains active. A canceled query keeps its
// ctx error; its partial matches are discarded.
func pollCancel(outs []SharedOutcome, states []scanState, scanQ []int) bool {
	any := false
	for _, i := range scanQ {
		if !states[i].active {
			continue
		}
		if err := states[i].ctx.Err(); err != nil {
			outs[i].Err = err
			outs[i].Matches = nil
			states[i].active = false
			continue
		}
		any = true
	}
	return any
}

// failActive ends the scan for every still-attached query with err —
// used for table-level faults (page read/decode, buffer insertion) that
// no attachee can recover from.
func failActive(err error, outs []SharedOutcome, states []scanState, scanQ []int) {
	for _, i := range scanQ {
		if states[i].active {
			outs[i].Err = err
			outs[i].Matches = nil
			states[i].active = false
		}
	}
}

// sharedFullScan answers the scanning queries with one full table scan —
// the no-buffer fallback (baseline engines with the Index Buffer
// disabled, or a buffer dropped between planning and execution).
func sharedFullScan(a Access, qs []SharedQuery, outs []SharedOutcome, states []scanState, scanQ []int) {
	for _, i := range scanQ {
		outs[i].Stats.FullScan = true
	}
	numPages := a.Table.NumPages()
	workers := a.scanWorkers(numPages)
	outs[scanQ[0]].Stats.ScanWorkers = workers
	if workers > 1 {
		parallelFullScan(a, qs, outs, states, scanQ, numPages, workers)
		for _, i := range scanQ {
			if states[i].active {
				outs[i].Stats.Matches = len(outs[i].Matches)
			}
		}
		return
	}
	for p := 0; p < numPages; p++ {
		if !pollCancel(outs, states, scanQ) {
			return
		}
		pg := storage.PageID(p)
		for _, i := range scanQ {
			if states[i].active {
				states[i].seen.read(&outs[i].Stats, pg)
			}
		}
		err := a.Table.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(a.Column)
			for _, i := range scanQ {
				if states[i].active && qs[i].matches(v) {
					outs[i].Matches = append(outs[i].Matches, Match{RID: rid, Tuple: tu})
				}
			}
			return nil
		})
		if err != nil {
			failActive(err, outs, states, scanQ)
			return
		}
	}
	for _, i := range scanQ {
		if states[i].active {
			outs[i].Stats.Matches = len(outs[i].Matches)
		}
	}
}

// sharedIndexingScan is the paper's Algorithm 1 generalized to a
// predicate set. The page set I comes from Algorithm 2
// (Space.SelectPagesForBuffer), chosen once for the batch; the buffer is
// pinned for the pass's duration so a concurrent scan on another table
// cannot displace the partitions the skip decisions depend on.
func sharedIndexingScan(a Access, qs []SharedQuery, outs []SharedOutcome, states []scanState, scanQ []int) {
	release := a.Space.PinForScan(a.Buffer)
	defer release()
	// The pass's C[p] == 0 skip decisions read the buffer's published
	// counter snapshot instead of taking the buffer lock per page. The
	// snapshot is taken once at scan start and stays valid for every
	// page: the only mutator running (we hold the table's write lock and
	// the buffer is pinned against displacement) is this scan itself,
	// and it mutates a page's counter state only after that page's own
	// skip check. The epoch pin keeps reclamation — triggered by this
	// scan's own FinishPage/ApplyPage publications — from nilling the
	// scan-start snapshot mid-pass.
	unpinEpoch := a.Space.PinEpoch()
	defer unpinEpoch()

	numPages := a.Table.NumPages()
	var selected []storage.PageID
	if a.ReadOnly {
		// Quota-degraded pass: I stays empty, so the page walk below never
		// indexes and the buffer is never mutated — but the existing state
		// still answers lookups and C[p] == 0 skips. The pin is still
		// required: a displacement between the buffer lookup and a skip
		// decision would otherwise drop entries this pass has already
		// counted on.
		for _, i := range scanQ {
			outs[i].Stats.QuotaDegraded = true
		}
	} else {
		selected = a.Space.SelectPagesForBufferObserved(a.Buffer, numPages, a.SpaceObs) // I ← SelectPagesForBuffer()
	}
	inI := make(map[storage.PageID]bool, len(selected))
	for _, p := range selected {
		inI[p] = true
	}

	// Index Buffer scan (lines 8–10), demultiplexed per query.
	for _, i := range scanQ {
		var rids []storage.RID
		if qs[i].Equality {
			rids = a.Buffer.Lookup(qs[i].Lo)
		} else {
			rids = a.Buffer.LookupRange(qs[i].Lo, qs[i].Hi)
		}
		m, err := fetchRIDs(a, rids, &outs[i].Stats, states[i].seen)
		if err != nil {
			outs[i].Err = err
			states[i].active = false
			continue
		}
		outs[i].Matches = m
		outs[i].Stats.BufferMatches = len(m)
	}

	// Table scan (lines 11–17): skip pages with C[p] == 0, index the
	// selected pages exactly once, demux matches to every attachee. With
	// parallelism the page walk fans out to a worker pool and the buffer
	// maintenance is applied in one ordered merge (see parallel.go);
	// results and C[p] transitions are identical either way.
	workers := a.scanWorkers(numPages)
	outs[scanQ[0]].Stats.ScanWorkers = workers
	snap := a.Buffer.CounterSnapshot()
	var entriesAdded int
	var skipped map[storage.PageID]bool
	var aborted bool
	if workers > 1 {
		skipped, entriesAdded, aborted = parallelIndexingPass(a, qs, outs, states, scanQ, inI, snap, numPages, workers)
	} else {
		skipped, entriesAdded, aborted = serialIndexingPass(a, qs, outs, states, scanQ, inI, snap, numPages)
	}

	// Recover covered matches on skipped pages for range queries: a range
	// straddling the coverage predicate has covered matches sitting
	// unreachable on skipped pages (see Range).
	if !aborted && a.Index != nil && len(skipped) > 0 {
		for _, i := range scanQ {
			if !states[i].active || qs[i].Equality {
				continue
			}
			var missing []storage.RID
			for _, rid := range a.Index.ScanRange(qs[i].Lo, qs[i].Hi) {
				if skipped[rid.Page] {
					missing = append(missing, rid)
				}
			}
			m, err := fetchRIDs(a, missing, &outs[i].Stats, states[i].seen)
			if err != nil {
				outs[i].Err = err
				outs[i].Matches = nil
				states[i].active = false
				continue
			}
			outs[i].Matches = append(outs[i].Matches, m...)
		}
	}

	// Attribute the batch-wide maintenance work to the first scanning
	// query, so per-query stats sum to the work actually performed.
	leader := scanQ[0]
	outs[leader].Stats.PagesSelected = len(selected)
	outs[leader].Stats.EntriesAdded = entriesAdded

	for _, i := range scanQ {
		if states[i].active {
			outs[i].Stats.Matches = len(outs[i].Matches)
		}
	}
}

// serialIndexingPass is the single-goroutine table-scan stage of
// Algorithm 1 (lines 11–17): skip pages with C[p] == 0, index the
// selected pages exactly once, demux matches to every attachee. It is
// the oracle the parallel pass (parallel.go) must be bit-identical to.
// Skip decisions read the scan-start counter snapshot — identical to
// the live counters at each page's check, since this scan is the only
// running mutator and touches a page's counter state only after the
// check. Returns the pages skipped, the entries added, and whether the
// scan aborted (fault, or every attachee canceled — the consistent
// prefix of indexed pages is kept either way).
func serialIndexingPass(a Access, qs []SharedQuery, outs []SharedOutcome, states []scanState, scanQ []int, inI map[storage.PageID]bool, snap *core.CounterSnap, numPages int) (map[storage.PageID]bool, int, bool) {
	entriesAdded := 0
	skipped := make(map[storage.PageID]bool)
	aborted := false
	for p := 0; p < numPages && !aborted; p++ {
		if !pollCancel(outs, states, scanQ) {
			aborted = true // every attachee canceled; keep the consistent prefix
			break
		}
		pg := storage.PageID(p)
		if snap.At(pg) == 0 {
			skipped[pg] = true
			for _, i := range scanQ {
				if states[i].active {
					outs[i].Stats.PagesSkipped++
				}
			}
			continue
		}
		indexThis := inI[pg]
		if indexThis {
			if err := a.Buffer.BeginPage(pg); err != nil {
				failActive(err, outs, states, scanQ)
				aborted = true
				break
			}
		}
		for _, i := range scanQ {
			if states[i].active {
				states[i].seen.read(&outs[i].Stats, pg)
			}
		}
		var added []core.PageEntry
		err := a.Table.ScanPage(pg, func(rid storage.RID, tu storage.Tuple) error {
			v := tu.Value(a.Column)
			for _, i := range scanQ {
				if states[i].active && qs[i].matches(v) {
					outs[i].Matches = append(outs[i].Matches, Match{RID: rid, Tuple: tu})
				}
			}
			if indexThis && (a.Index == nil || !a.Index.Covers(v)) {
				if err := a.Buffer.AddEntry(pg, v, rid); err != nil {
					return err
				}
				added = append(added, core.PageEntry{Key: v, RID: rid})
			}
			return nil
		})
		if err != nil {
			if indexThis {
				// Mid-page failure: BeginPage assigned the page to a
				// partition but only part of its tuples were inserted —
				// without this rollback C[pg] would read 0 and every later
				// scan would skip tuples that were never buffered.
				a.Buffer.AbortPage(pg, added)
			}
			failActive(err, outs, states, scanQ)
			aborted = true
			break
		}
		entriesAdded += len(added)
		if indexThis {
			// The page's C[p] → 0 transition becomes visible to lock-free
			// readers only now, with the entry set complete — BeginPage
			// deliberately does not publish the half-inserted state.
			a.Buffer.FinishPage(pg)
			if a.Span != nil {
				a.Span("page-complete", int(pg), len(added))
			}
		}
	}
	return skipped, entriesAdded, aborted
}
