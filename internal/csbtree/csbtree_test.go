package csbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }
func rid(p, s int) storage.RID { return storage.RID{Page: storage.PageID(p), Slot: uint16(s)} }

func TestNewPanicsOnTinyOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("order < 4 should panic")
		}
	}()
	New(2)
}

func TestInsertLookup(t *testing.T) {
	tr := New(4)
	if !tr.Insert(iv(5), rid(1, 0)) {
		t.Error("first insert should add")
	}
	if tr.Insert(iv(5), rid(1, 0)) {
		t.Error("duplicate should not add")
	}
	tr.Insert(iv(5), rid(0, 3))
	post := tr.Lookup(iv(5))
	if len(post) != 2 || post[0] != rid(0, 3) || post[1] != rid(1, 0) {
		t.Errorf("posting = %v (want RID-sorted)", post)
	}
	if tr.Lookup(iv(6)) != nil {
		t.Error("missing key should be nil")
	}
	if !tr.Contains(iv(5), rid(1, 0)) || tr.Contains(iv(5), rid(9, 9)) {
		t.Error("Contains wrong")
	}
	if tr.Len() != 1 || tr.EntryCount() != 2 {
		t.Errorf("Len=%d Entries=%d", tr.Len(), tr.EntryCount())
	}
}

func TestInsertInvalidKeyPanics(t *testing.T) {
	tr := NewDefault()
	defer func() {
		if recover() == nil {
			t.Error("invalid key should panic")
		}
	}()
	tr.Insert(storage.Value{}, rid(0, 0))
}

func TestDeepTreeOrderedIteration(t *testing.T) {
	tr := New(4)
	const n = 3000
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, k := range perm {
		if !tr.Insert(iv(int64(k)), rid(k, 0)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	prev := int64(-1)
	count := 0
	tr.Ascend(func(k storage.Value, post []storage.RID) bool {
		if k.Int64() <= prev {
			t.Fatalf("iteration out of order: %d after %d", k.Int64(), prev)
		}
		prev = k.Int64()
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
	// Every key still reachable by point lookup after all the splits.
	for k := 0; k < n; k++ {
		post := tr.Lookup(iv(int64(k)))
		if len(post) != 1 || post[0] != rid(k, 0) {
			t.Fatalf("lookup %d = %v", k, post)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for k := 0; k < 200; k++ {
		tr.Insert(iv(int64(k)), rid(k, 0))
	}
	n := 0
	tr.Ascend(func(storage.Value, []storage.RID) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestLazyDelete(t *testing.T) {
	tr := New(4)
	for k := 0; k < 500; k++ {
		tr.Insert(iv(int64(k)), rid(k, 0))
		tr.Insert(iv(int64(k)), rid(k, 1))
	}
	if !tr.Delete(iv(250), rid(250, 0)) {
		t.Error("delete should succeed")
	}
	if tr.Delete(iv(250), rid(250, 0)) {
		t.Error("re-delete should fail")
	}
	if tr.Delete(iv(10000), rid(0, 0)) {
		t.Error("delete of absent key should fail")
	}
	if got := tr.Lookup(iv(250)); len(got) != 1 || got[0] != rid(250, 1) {
		t.Errorf("posting after delete = %v", got)
	}
	// Empty a key completely: it disappears from iteration.
	tr.Delete(iv(250), rid(250, 1))
	if tr.Lookup(iv(250)) != nil {
		t.Error("fully deleted key should be gone")
	}
	if tr.Len() != 499 {
		t.Errorf("Len = %d, want 499", tr.Len())
	}
	seen := false
	tr.Ascend(func(k storage.Value, _ []storage.RID) bool {
		if k.Int64() == 250 {
			seen = true
		}
		return true
	})
	if seen {
		t.Error("deleted key surfaced in iteration")
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New(8)
	model := map[int64]map[storage.RID]bool{}
	entries := 0
	for step := 0; step < 10000; step++ {
		k := rng.Int63n(400)
		r := rid(rng.Intn(60), rng.Intn(3))
		if rng.Intn(3) > 0 { // insert-biased so the tree grows
			added := tr.Insert(iv(k), r)
			if added == model[k][r] {
				t.Fatalf("step %d: insert(%d,%v) added=%v model has=%v", step, k, r, added, model[k][r])
			}
			if model[k] == nil {
				model[k] = map[storage.RID]bool{}
			}
			if added {
				model[k][r] = true
				entries++
			}
		} else {
			removed := tr.Delete(iv(k), r)
			if removed != model[k][r] {
				t.Fatalf("step %d: delete(%d,%v) removed=%v model has=%v", step, k, r, removed, model[k][r])
			}
			if removed {
				delete(model[k], r)
				if len(model[k]) == 0 {
					delete(model, k)
				}
				entries--
			}
		}
	}
	if tr.EntryCount() != entries || tr.Len() != len(model) {
		t.Fatalf("Len=%d/%d Entries=%d/%d", tr.Len(), len(model), tr.EntryCount(), entries)
	}
	for k, rids := range model {
		post := tr.Lookup(iv(k))
		if len(post) != len(rids) {
			t.Fatalf("key %d: posting %v, model %v", k, post, rids)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New(5)
		for i, k := range keys {
			tr.Insert(iv(k), rid(i, 0))
		}
		for i, k := range keys {
			if !tr.Delete(iv(k), rid(i, 0)) {
				return false
			}
		}
		return tr.Len() == 0 && tr.EntryCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(4)
	words := []string{"HEL", "FRA", "ORD", "JFK", "MUC"}
	for i, w := range words {
		tr.Insert(storage.StringValue(w), rid(i, 0))
	}
	if post := tr.Lookup(storage.StringValue("HEL")); len(post) != 1 || post[0] != rid(0, 0) {
		t.Errorf("HEL = %v", post)
	}
	prev := ""
	tr.Ascend(func(k storage.Value, _ []storage.RID) bool {
		if k.Str() <= prev && prev != "" {
			t.Errorf("order: %q after %q", k.Str(), prev)
		}
		prev = k.Str()
		return true
	})
}
