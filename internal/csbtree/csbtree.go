// Package csbtree implements a cache-sensitive B+-tree (CSB+-tree, Rao &
// Ross, SIGMOD 2000) mapping values to RID posting lists. The paper names
// the CSB+-tree as a drop-in alternative structure for the Index Buffer
// (§III); this implementation exists to back that interchangeability
// claim and the corresponding ablation benchmark.
//
// The CSB+ idea: all children of a node are stored contiguously in one
// "node group", and the parent keeps a single pointer to the group
// instead of one pointer per child. This halves pointer overhead and
// improves cache-line utilization during descent; the price is that
// splitting a child shifts its siblings within the group (memmove
// instead of pointer surgery), and splitting the parent copies half the
// group into a new one.
//
// Deletion is lazy, as in the original CSB+ proposal: entries are removed
// from postings and keys from leaves without rebalancing. The Index
// Buffer discards whole partitions (whole trees), so structural shrink is
// never needed there.
package csbtree

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// DefaultOrder is the default node capacity (max keys per node).
const DefaultOrder = 32

// group is a contiguous block of sibling nodes — the children of exactly
// one inode. Exactly one of inners/leaves is non-nil, depending on the
// level.
type group struct {
	inners []inode
	leaves []lnode
}

// len returns the number of nodes in the group.
func (g *group) len() int {
	if g.leaves != nil {
		return len(g.leaves)
	}
	return len(g.inners)
}

// inode is an internal node. keys[i] separates child i from child i+1;
// an inode with n keys has n+1 children: the nodes of its child group.
type inode struct {
	keys     []storage.Value
	children *group
}

// lnode is a leaf node.
type lnode struct {
	keys  []storage.Value
	posts [][]storage.RID
}

// Tree is a CSB+-tree. Not safe for concurrent use.
type Tree struct {
	order    int
	rootI    *inode // non-nil when the tree has internal levels
	rootL    *lnode // non-nil while the tree is a single leaf
	distinct int
	entries  int
}

// New creates an empty tree with the given node capacity (>= 4).
func New(order int) *Tree {
	if order < 4 {
		panic(fmt.Sprintf("csbtree: order %d, want >= 4", order))
	}
	return &Tree{order: order, rootL: &lnode{}}
}

// NewDefault creates an empty tree with DefaultOrder.
func NewDefault() *Tree { return New(DefaultOrder) }

// Len returns the number of distinct keys with live postings.
func (t *Tree) Len() int { return t.distinct }

// EntryCount returns the number of (key, rid) entries.
func (t *Tree) EntryCount() int { return t.entries }

func search(ks []storage.Value, k storage.Value) int {
	return sort.Search(len(ks), func(i int) bool { return ks[i].Compare(k) > 0 })
}

func leafSlot(ks []storage.Value, k storage.Value) (int, bool) {
	i := sort.Search(len(ks), func(i int) bool { return ks[i].Compare(k) >= 0 })
	return i, i < len(ks) && ks[i].Equal(k)
}

// descend walks to the leaf that would hold key.
func (t *Tree) descend(key storage.Value) *lnode {
	if t.rootL != nil {
		return t.rootL
	}
	n := t.rootI
	for {
		ci := search(n.keys, key)
		g := n.children
		if g.leaves != nil {
			return &g.leaves[ci]
		}
		n = &g.inners[ci]
	}
}

// Lookup returns the posting list for key, or nil. The slice is owned by
// the tree.
func (t *Tree) Lookup(key storage.Value) []storage.RID {
	lf := t.descend(key)
	if i, ok := leafSlot(lf.keys, key); ok {
		return lf.posts[i]
	}
	return nil
}

// Contains reports whether (key, rid) is present.
func (t *Tree) Contains(key storage.Value, rid storage.RID) bool {
	for _, r := range t.Lookup(key) {
		if r == rid {
			return true
		}
	}
	return false
}

// Insert adds (key, rid); a duplicate pair returns false.
func (t *Tree) Insert(key storage.Value, rid storage.RID) bool {
	if !key.IsValid() {
		panic("csbtree: insert of invalid key")
	}
	if t.rootL != nil {
		added, sep, right := t.insertLeaf(t.rootL, key, rid)
		if right != nil {
			g := &group{leaves: []lnode{*t.rootL, *right}}
			t.rootI = &inode{keys: []storage.Value{sep}, children: g}
			t.rootL = nil
		}
		return added
	}
	added, sep, right := t.insertInner(t.rootI, key, rid)
	if right != nil {
		g := &group{inners: []inode{*t.rootI, *right}}
		t.rootI = &inode{keys: []storage.Value{sep}, children: g}
	}
	return added
}

// insertLeaf inserts into lf, splitting when over capacity. The new
// right sibling (if any) is returned for the caller to place into the
// group.
func (t *Tree) insertLeaf(lf *lnode, key storage.Value, rid storage.RID) (added bool, sep storage.Value, right *lnode) {
	i, found := leafSlot(lf.keys, key)
	if found {
		post := lf.posts[i]
		j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
		if j < len(post) && post[j] == rid {
			return false, storage.Value{}, nil
		}
		lf.posts[i] = append(post, storage.RID{})
		copy(lf.posts[i][j+1:], lf.posts[i][j:])
		lf.posts[i][j] = rid
		t.entries++
		return true, storage.Value{}, nil
	}
	lf.keys = append(lf.keys, storage.Value{})
	copy(lf.keys[i+1:], lf.keys[i:])
	lf.keys[i] = key
	lf.posts = append(lf.posts, nil)
	copy(lf.posts[i+1:], lf.posts[i:])
	lf.posts[i] = []storage.RID{rid}
	t.distinct++
	t.entries++
	if len(lf.keys) > t.order {
		mid := len(lf.keys) / 2
		r := &lnode{
			keys:  append([]storage.Value(nil), lf.keys[mid:]...),
			posts: append([][]storage.RID(nil), lf.posts[mid:]...),
		}
		lf.keys = lf.keys[:mid:mid]
		lf.posts = lf.posts[:mid:mid]
		return true, r.keys[0], r
	}
	return true, storage.Value{}, nil
}

// insertInner descends from n. A child split shifts that child's
// siblings within the contiguous group (the CSB+ hallmark); when n
// itself overflows, its child group is cut in two and n splits.
func (t *Tree) insertInner(n *inode, key storage.Value, rid storage.RID) (added bool, sep storage.Value, right *inode) {
	slot := search(n.keys, key)
	g := n.children

	var childSep storage.Value
	split := false

	if g.leaves != nil {
		var r *lnode
		added, childSep, r = t.insertLeaf(&g.leaves[slot], key, rid)
		if r != nil {
			g.leaves = append(g.leaves, lnode{})
			copy(g.leaves[slot+2:], g.leaves[slot+1:])
			g.leaves[slot+1] = *r
			split = true
		}
	} else {
		var r *inode
		added, childSep, r = t.insertInner(&g.inners[slot], key, rid)
		if r != nil {
			g.inners = append(g.inners, inode{})
			copy(g.inners[slot+2:], g.inners[slot+1:])
			g.inners[slot+1] = *r
			split = true
		}
	}
	if !split {
		return added, storage.Value{}, nil
	}

	n.keys = append(n.keys, storage.Value{})
	copy(n.keys[slot+1:], n.keys[slot:])
	n.keys[slot] = childSep

	if len(n.keys) > t.order {
		mid := len(n.keys) / 2
		sepUp := n.keys[mid]
		leftChildren := mid + 1

		var rg *group
		if g.leaves != nil {
			rg = &group{leaves: append([]lnode(nil), g.leaves[leftChildren:]...)}
			g.leaves = g.leaves[:leftChildren:leftChildren]
		} else {
			rg = &group{inners: append([]inode(nil), g.inners[leftChildren:]...)}
			g.inners = g.inners[:leftChildren:leftChildren]
		}
		r := &inode{
			keys:     append([]storage.Value(nil), n.keys[mid+1:]...),
			children: rg,
		}
		n.keys = n.keys[:mid:mid]
		return added, sepUp, r
	}
	return added, storage.Value{}, nil
}

// Delete removes (key, rid) lazily: postings shrink and emptied keys
// leave the leaf, but nodes never rebalance. Returns false when absent.
func (t *Tree) Delete(key storage.Value, rid storage.RID) bool {
	lf := t.descend(key)
	i, found := leafSlot(lf.keys, key)
	if !found {
		return false
	}
	post := lf.posts[i]
	j := sort.Search(len(post), func(j int) bool { return !post[j].Less(rid) })
	if j >= len(post) || post[j] != rid {
		return false
	}
	lf.posts[i] = append(post[:j], post[j+1:]...)
	t.entries--
	if len(lf.posts[i]) == 0 {
		lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
		lf.posts = append(lf.posts[:i], lf.posts[i+1:]...)
		t.distinct--
	}
	return true
}

// AscendRange calls fn for every key in [lo, hi] in order until fn
// returns false. An invalid lo means "from the minimum"; an invalid hi
// means "to the maximum".
func (t *Tree) AscendRange(lo, hi storage.Value, fn func(key storage.Value, post []storage.RID) bool) {
	t.Ascend(func(k storage.Value, post []storage.RID) bool {
		if lo.IsValid() && k.Compare(lo) < 0 {
			return true
		}
		if hi.IsValid() && k.Compare(hi) > 0 {
			return false
		}
		return fn(k, post)
	})
}

// Ascend calls fn for every (key, posting) in key order until fn returns
// false.
func (t *Tree) Ascend(fn func(key storage.Value, post []storage.RID) bool) {
	if t.rootL != nil {
		visitLeaf(t.rootL, fn)
		return
	}
	var rec func(n *inode) bool
	rec = func(n *inode) bool {
		g := n.children
		for i := 0; i <= len(n.keys); i++ {
			if g.leaves != nil {
				if !visitLeaf(&g.leaves[i], fn) {
					return false
				}
			} else if !rec(&g.inners[i]) {
				return false
			}
		}
		return true
	}
	rec(t.rootI)
}

func visitLeaf(lf *lnode, fn func(storage.Value, []storage.RID) bool) bool {
	for i, k := range lf.keys {
		if !fn(k, lf.posts[i]) {
			return false
		}
	}
	return true
}
