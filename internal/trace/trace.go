// Package trace implements query monitoring: a bounded ring of recent
// query outcomes plus per-column aggregates (hit rates, page costs,
// buffer effectiveness). It is the observability layer a DBA would use
// to see whether the Index Buffer is earning its memory — the engine
// records into an attached Tracer, the shell exposes it as SHOW STATS,
// and the facade as DB.TraceReport.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/exec"
)

// Event is one recorded query outcome.
type Event struct {
	Table      string
	Column     string
	Mechanism  string // "hit", "indexing-scan", "full-scan"
	PagesRead  int
	Skipped    int
	Matches    int
	WallMicros int64
}

// Aggregate summarizes the events of one (table, column) pair.
type Aggregate struct {
	Table, Column string
	Queries       uint64
	Hits          uint64
	PagesRead     uint64
	PagesSkipped  uint64
	WallMicros    uint64
}

// HitRate returns hits/queries (0 when no queries).
func (a Aggregate) HitRate() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Queries)
}

// MeanPages returns pages read per query.
func (a Aggregate) MeanPages() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.PagesRead) / float64(a.Queries)
}

// SkipShare returns the fraction of touched pages that were skipped.
func (a Aggregate) SkipShare() float64 {
	total := a.PagesRead + a.PagesSkipped
	if total == 0 {
		return 0
	}
	return float64(a.PagesSkipped) / float64(total)
}

// Tracer records query events. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled int
	aggs   map[string]*Aggregate // keyed by table+"."+column
}

// New creates a tracer keeping the last capacity events (min 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity), aggs: make(map[string]*Aggregate)}
}

// Record ingests one query outcome.
func (t *Tracer) Record(table, column string, stats exec.QueryStats) {
	mech := "indexing-scan"
	switch {
	case stats.PartialHit:
		mech = "hit"
	case stats.FullScan:
		mech = "full-scan"
	}
	ev := Event{
		Table:      table,
		Column:     column,
		Mechanism:  mech,
		PagesRead:  stats.PagesRead,
		Skipped:    stats.PagesSkipped,
		Matches:    stats.Matches,
		WallMicros: stats.Duration.Microseconds(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	key := table + "." + column
	a := t.aggs[key]
	if a == nil {
		a = &Aggregate{Table: table, Column: column}
		t.aggs[key] = a
	}
	a.Queries++
	if stats.PartialHit {
		a.Hits++
	}
	a.PagesRead += uint64(stats.PagesRead)
	a.PagesSkipped += uint64(stats.PagesSkipped)
	a.WallMicros += uint64(ev.WallMicros)
}

// Recent returns up to n most-recent events, newest first.
func (t *Tracer) Recent(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.filled {
		n = t.filled
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Aggregates returns per-column summaries sorted by table then column.
func (t *Tracer) Aggregates() []Aggregate {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Aggregate, 0, len(t.aggs))
	for _, a := range t.aggs {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// Reset clears all recorded state.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.filled = 0, 0
	t.aggs = make(map[string]*Aggregate)
}

// Report renders the aggregates as an aligned text table.
func (t *Tracer) Report() string {
	aggs := t.Aggregates()
	if len(aggs) == 0 {
		return "no queries recorded"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %12s %10s\n", "column", "queries", "hit%", "pages/query", "skip%")
	for _, a := range aggs {
		fmt.Fprintf(&sb, "%-20s %8d %7.1f%% %12.1f %9.1f%%\n",
			a.Table+"."+a.Column, a.Queries, 100*a.HitRate(), a.MeanPages(), 100*a.SkipShare())
	}
	return strings.TrimRight(sb.String(), "\n")
}
