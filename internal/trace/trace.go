// Package trace implements query monitoring: a bounded ring of recent
// query outcomes, per-column aggregates (hit rates, page costs, buffer
// effectiveness, mean wall-clock), per-mechanism latency histograms,
// and — opt-in — a ring of structured span events emitted by the
// adaptive machinery (miss admission, shared-scan batching, Algorithm-2
// page selection, displacement, C[p]→0 transitions). It is the
// observability layer a DBA would use to see whether the Index Buffer
// is earning its memory — the engine records into an attached Tracer,
// the shell exposes it as SHOW STATS, the facade as DB.TraceReport /
// DB.TraceEvents, and the HTTP endpoint as /metrics.
//
// Every method is safe for concurrent use. Span emission is gated by a
// single atomic load and is allocation-free while disabled, so the
// tracer can stay attached to a production engine at ~zero cost.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/metrics"
)

// Event is one recorded query outcome.
type Event struct {
	Table      string
	Column     string
	Mechanism  string // "hit", "indexing-scan", "full-scan", "degraded-scan", "shared-follower"
	PagesRead  int
	Skipped    int
	Matches    int
	WallMicros int64
}

// Aggregate summarizes the events of one (table, column) pair.
type Aggregate struct {
	Table, Column string
	Queries       uint64
	Hits          uint64
	PagesRead     uint64
	PagesSkipped  uint64
	WallMicros    uint64
}

// HitRate returns hits/queries (0 when no queries).
func (a Aggregate) HitRate() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Queries)
}

// MeanPages returns pages read per query.
func (a Aggregate) MeanPages() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.PagesRead) / float64(a.Queries)
}

// MeanWallMicros returns mean wall-clock microseconds per query.
func (a Aggregate) MeanWallMicros() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.WallMicros) / float64(a.Queries)
}

// SkipShare returns the fraction of touched pages that were skipped.
func (a Aggregate) SkipShare() float64 {
	total := a.PagesRead + a.PagesSkipped
	if total == 0 {
		return 0
	}
	return float64(a.PagesSkipped) / float64(total)
}

// Span kinds, in the order the adaptive machinery emits them. The core
// package emits SpanPageSelect and SpanDisplace through its Observer
// interface using these literal strings (it cannot import this package).
const (
	// SpanMissAdmit: a query missed the partial index and entered the
	// scan-sharing admission layer. N is 0.
	SpanMissAdmit = "miss-admit"
	// SpanScanAttach: a query joined another query's forming batch
	// instead of leading its own scan. N is 0.
	SpanScanAttach = "scan-attach"
	// SpanScanLead: a batch leader sealed its batch and is about to run
	// one shared Algorithm-1 pass. N is the batch size.
	SpanScanLead = "scan-lead"
	// SpanPageSelect: Algorithm 2 chose the page set I for a scan.
	// N is |I|.
	SpanPageSelect = "page-select"
	// SpanDisplace: a victim partition was dropped from Target's buffer
	// on behalf of another buffer's scan. N is the entries released.
	SpanDisplace = "displace"
	// SpanPageComplete: an indexing scan finished buffering a page — the
	// C[p]→0 transition that makes the page skippable. Page is the page,
	// N the entries added for it.
	SpanPageComplete = "page-complete"
	// SpanScanParallel: a table-scan stage fanned out to a worker pool.
	// N is the worker count; emitted once per parallel scan, before the
	// workers start.
	SpanScanParallel = "scan-parallel"
)

// Span is one structured event from the adaptive machinery. Seq is a
// monotonic sequence number over the tracer's lifetime (it survives
// Reset), so consumers can order spans across ring snapshots and detect
// drops.
type Span struct {
	Seq    uint64
	Kind   string // one of the Span* constants
	Target string // buffer name, "table.column"
	Page   int    // page id for page-scoped kinds, else -1
	N      int    // kind-specific count payload (see the constants)
	// Trace is the statement trace ID the span was emitted under, when
	// the emitting path carried one ("" otherwise) — the per-query
	// correlation key joining the global stream to flight records.
	Trace string
}

// Tracer records query events and span events. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled int
	aggs   map[string]*Aggregate         // keyed by table+"."+column
	lat    map[string]*metrics.Histogram // per-mechanism latency (µs)

	spansOn atomic.Bool   // gate checked before any span work
	seq     atomic.Uint64 // monotonic span sequence, survives Reset

	// spanSink, when set, receives every recorded span after it enters
	// the ring — the telemetry-export tap. Atomic so Span's hot path
	// never takes a lock for it.
	spanSink atomic.Pointer[func(Span)]

	spanMu     sync.Mutex
	spans      []Span
	spanNext   int
	spanFilled int
}

// latReservoir bounds each mechanism's latency histogram so a
// long-running engine keeps constant tracer memory; quantiles become
// sampled estimates past this many observations per mechanism.
const latReservoir = 4096

// New creates a tracer keeping the last capacity query events and the
// last capacity span events (min 1 each).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring:  make([]Event, capacity),
		spans: make([]Span, capacity),
		aggs:  make(map[string]*Aggregate),
		lat:   make(map[string]*metrics.Histogram),
	}
}

// Record ingests one query outcome, deriving the mechanism from the
// stats: partial-index hit, full scan, quota-degraded scan, or indexing
// scan.
func (t *Tracer) Record(table, column string, stats exec.QueryStats) {
	mech := "indexing-scan"
	switch {
	case stats.PartialHit:
		mech = "hit"
	case stats.FullScan:
		mech = "full-scan"
	case stats.QuotaDegraded:
		mech = "degraded-scan"
	}
	t.record(table, column, mech, stats)
}

// RecordFollower ingests the outcome of a query that rode along on
// another query's shared scan. A follower whose predicate was served by
// the partial index (re-dispatch after an index redefinition) still
// counts as a hit; any scanning outcome is attributed to the
// "shared-follower" mechanism so its latency — dominated by waiting on
// the leader — does not distort the indexing-scan histogram.
func (t *Tracer) RecordFollower(table, column string, stats exec.QueryStats) {
	mech := "shared-follower"
	if stats.PartialHit {
		mech = "hit"
	}
	t.record(table, column, mech, stats)
}

func (t *Tracer) record(table, column, mech string, stats exec.QueryStats) {
	ev := Event{
		Table:      table,
		Column:     column,
		Mechanism:  mech,
		PagesRead:  stats.PagesRead,
		Skipped:    stats.PagesSkipped,
		Matches:    stats.Matches,
		WallMicros: stats.Duration.Microseconds(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	key := table + "." + column
	a := t.aggs[key]
	if a == nil {
		a = &Aggregate{Table: table, Column: column}
		t.aggs[key] = a
	}
	a.Queries++
	if stats.PartialHit {
		a.Hits++
	}
	a.PagesRead += uint64(stats.PagesRead)
	a.PagesSkipped += uint64(stats.PagesSkipped)
	a.WallMicros += uint64(ev.WallMicros)

	h := t.lat[mech]
	if h == nil {
		h = metrics.NewReservoirHistogram(latReservoir, int64(len(t.lat)+1))
		t.lat[mech] = h
	}
	h.Observe(float64(ev.WallMicros))
}

// clampTake bounds a caller-supplied "last n" request to what a ring
// actually holds: negative n reads as 0 (historically Recent panicked
// on the negative make cap) and oversized n reads as everything
// retained. Recent and Spans share it so the two rings can never
// drift apart on boundary behavior again.
func clampTake(n, filled int) int {
	if n < 0 {
		return 0
	}
	if n > filled {
		return filled
	}
	return n
}

// Recent returns up to n most-recent events, newest first. n < 0 is
// treated as 0 (historically this panicked on the negative make cap).
func (t *Tracer) Recent(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n = clampTake(n, t.filled)
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Aggregates returns per-column summaries sorted by table then column.
func (t *Tracer) Aggregates() []Aggregate {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Aggregate, 0, len(t.aggs))
	for _, a := range t.aggs {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// MechanismLatency is one mechanism's latency summary in microseconds.
type MechanismLatency struct {
	Mechanism string
	metrics.HistogramStats
}

// LatencyStats returns per-mechanism latency summaries sorted by
// mechanism name.
func (t *Tracer) LatencyStats() []MechanismLatency {
	t.mu.Lock()
	hists := make(map[string]*metrics.Histogram, len(t.lat))
	for m, h := range t.lat {
		hists[m] = h
	}
	t.mu.Unlock()
	out := make([]MechanismLatency, 0, len(hists))
	for m, h := range hists {
		out = append(out, MechanismLatency{Mechanism: m, HistogramStats: h.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mechanism < out[j].Mechanism })
	return out
}

// EnableSpans turns span-event recording on or off. Off (the default)
// makes Span a single atomic load — no lock, no allocation — so the
// instrumented hot paths cost ~nothing in production.
func (t *Tracer) EnableSpans(on bool) { t.spansOn.Store(on) }

// SpansEnabled reports whether span events are being recorded. Callers
// that must build a span's arguments (closures, name formatting) should
// check it first to keep the disabled path allocation-free.
func (t *Tracer) SpansEnabled() bool { return t.spansOn.Load() }

// Span records one span event into the span ring, stamping it with the
// next monotonic sequence number. A no-op while spans are disabled.
func (t *Tracer) Span(kind, target string, page, n int) {
	t.SpanTraced(kind, target, page, n, "")
}

// SpanTraced is Span carrying the emitting statement's trace ID, so the
// global stream stays joinable to per-statement flight records. Paths
// without statement context pass "" (via Span).
func (t *Tracer) SpanTraced(kind, target string, page, n int, traceID string) {
	if !t.spansOn.Load() {
		return
	}
	sp := Span{Seq: t.seq.Add(1), Kind: kind, Target: target, Page: page, N: n, Trace: traceID}
	t.spanMu.Lock()
	t.spans[t.spanNext] = sp
	t.spanNext = (t.spanNext + 1) % len(t.spans)
	if t.spanFilled < len(t.spans) {
		t.spanFilled++
	}
	t.spanMu.Unlock()
	if fn := t.spanSink.Load(); fn != nil {
		(*fn)(sp)
	}
}

// SetSpanSink registers fn to receive every span after it enters the
// ring (nil unregisters). The span gate still applies — a sink sees
// nothing while spans are disabled — and fn runs on the emitting
// goroutine, so it must be fast and must not call back into the
// tracer's span path.
func (t *Tracer) SetSpanSink(fn func(Span)) {
	if fn == nil {
		t.spanSink.Store(nil)
		return
	}
	t.spanSink.Store(&fn)
}

// Spans returns up to n most-recent span events, newest first (n < 0 is
// treated as 0, like Recent).
func (t *Tracer) Spans(n int) []Span {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	n = clampTake(n, t.spanFilled)
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.spans[(t.spanNext-i+len(t.spans))%len(t.spans)])
	}
	return out
}

// SpanCount returns the number of span events ever emitted (the last
// assigned sequence number); it keeps counting across Reset.
func (t *Tracer) SpanCount() uint64 { return t.seq.Load() }

// Reset clears all recorded state (events, aggregates, latency
// histograms, span ring). The span sequence number keeps counting so
// pre- and post-Reset spans remain ordered.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next, t.filled = 0, 0
	t.aggs = make(map[string]*Aggregate)
	t.lat = make(map[string]*metrics.Histogram)
	t.mu.Unlock()
	t.spanMu.Lock()
	t.spanNext, t.spanFilled = 0, 0
	t.spanMu.Unlock()
}

// Report renders the aggregates as an aligned text table.
func (t *Tracer) Report() string {
	aggs := t.Aggregates()
	if len(aggs) == 0 {
		return "no queries recorded"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %12s %10s %12s\n", "column", "queries", "hit%", "pages/query", "skip%", "µs/query")
	for _, a := range aggs {
		fmt.Fprintf(&sb, "%-20s %8d %7.1f%% %12.1f %9.1f%% %12.1f\n",
			a.Table+"."+a.Column, a.Queries, 100*a.HitRate(), a.MeanPages(), 100*a.SkipShare(), a.MeanWallMicros())
	}
	return strings.TrimRight(sb.String(), "\n")
}
