package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
)

func stats(hit, full bool, pages, skipped, matches int) exec.QueryStats {
	return exec.QueryStats{
		PartialHit:   hit,
		FullScan:     full,
		PagesRead:    pages,
		PagesSkipped: skipped,
		Matches:      matches,
		Duration:     3 * time.Millisecond,
	}
}

func TestRecordAndAggregates(t *testing.T) {
	tr := New(16)
	tr.Record("t", "a", stats(true, false, 5, 0, 2))
	tr.Record("t", "a", stats(false, false, 10, 90, 1))
	tr.Record("t", "b", stats(false, true, 100, 0, 0))

	aggs := tr.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	a := aggs[0]
	if a.Column != "a" || a.Queries != 2 || a.Hits != 1 {
		t.Errorf("agg a = %+v", a)
	}
	if a.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", a.HitRate())
	}
	if a.MeanPages() != 7.5 {
		t.Errorf("mean pages = %v", a.MeanPages())
	}
	if got := a.SkipShare(); got < 0.85 || got > 0.87 { // 90/(15+90)
		t.Errorf("skip share = %v", got)
	}
	b := aggs[1]
	if b.Column != "b" || b.HitRate() != 0 || b.SkipShare() != 0 {
		t.Errorf("agg b = %+v", b)
	}
}

func TestZeroQueryAggregates(t *testing.T) {
	var a Aggregate
	if a.HitRate() != 0 || a.MeanPages() != 0 || a.SkipShare() != 0 {
		t.Error("zero aggregate should report zeros")
	}
}

func TestRecentRingOrder(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 5; i++ {
		tr.Record("t", "a", stats(false, false, i, 0, 0))
	}
	got := tr.Recent(10) // more than capacity: clipped to 3
	if len(got) != 3 {
		t.Fatalf("recent = %d events", len(got))
	}
	// Newest first: pages 5, 4, 3.
	for i, want := range []int{5, 4, 3} {
		if got[i].PagesRead != want {
			t.Errorf("recent[%d].PagesRead = %d, want %d", i, got[i].PagesRead, want)
		}
	}
	if got[0].Mechanism != "indexing-scan" {
		t.Errorf("mechanism = %q", got[0].Mechanism)
	}
}

func TestReportAndReset(t *testing.T) {
	tr := New(8)
	if tr.Report() != "no queries recorded" {
		t.Errorf("empty report = %q", tr.Report())
	}
	tr.Record("flights", "airport", stats(true, false, 3, 0, 1))
	rep := tr.Report()
	if !strings.Contains(rep, "flights.airport") || !strings.Contains(rep, "100.0%") {
		t.Errorf("report = %q", rep)
	}
	tr.Reset()
	if tr.Report() != "no queries recorded" || len(tr.Recent(5)) != 0 {
		t.Error("reset did not clear")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record("t", "a", stats(i%2 == 0, false, 1, 1, 0))
				_ = tr.Recent(5)
				_ = tr.Aggregates()
			}
		}()
	}
	wg.Wait()
	aggs := tr.Aggregates()
	if len(aggs) != 1 || aggs[0].Queries != 1600 {
		t.Errorf("aggs = %+v", aggs)
	}
}

func TestCapacityClamp(t *testing.T) {
	tr := New(0)
	tr.Record("t", "a", stats(false, false, 1, 0, 0))
	if got := tr.Recent(5); len(got) != 1 {
		t.Errorf("recent = %d", len(got))
	}
}
