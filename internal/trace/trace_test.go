package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
)

func stats(hit, full bool, pages, skipped, matches int) exec.QueryStats {
	return exec.QueryStats{
		PartialHit:   hit,
		FullScan:     full,
		PagesRead:    pages,
		PagesSkipped: skipped,
		Matches:      matches,
		Duration:     3 * time.Millisecond,
	}
}

func TestRecordAndAggregates(t *testing.T) {
	tr := New(16)
	tr.Record("t", "a", stats(true, false, 5, 0, 2))
	tr.Record("t", "a", stats(false, false, 10, 90, 1))
	tr.Record("t", "b", stats(false, true, 100, 0, 0))

	aggs := tr.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	a := aggs[0]
	if a.Column != "a" || a.Queries != 2 || a.Hits != 1 {
		t.Errorf("agg a = %+v", a)
	}
	if a.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", a.HitRate())
	}
	if a.MeanPages() != 7.5 {
		t.Errorf("mean pages = %v", a.MeanPages())
	}
	if got := a.SkipShare(); got < 0.85 || got > 0.87 { // 90/(15+90)
		t.Errorf("skip share = %v", got)
	}
	b := aggs[1]
	if b.Column != "b" || b.HitRate() != 0 || b.SkipShare() != 0 {
		t.Errorf("agg b = %+v", b)
	}
}

func TestZeroQueryAggregates(t *testing.T) {
	var a Aggregate
	if a.HitRate() != 0 || a.MeanPages() != 0 || a.SkipShare() != 0 {
		t.Error("zero aggregate should report zeros")
	}
}

func TestRecentRingOrder(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 5; i++ {
		tr.Record("t", "a", stats(false, false, i, 0, 0))
	}
	got := tr.Recent(10) // more than capacity: clipped to 3
	if len(got) != 3 {
		t.Fatalf("recent = %d events", len(got))
	}
	// Newest first: pages 5, 4, 3.
	for i, want := range []int{5, 4, 3} {
		if got[i].PagesRead != want {
			t.Errorf("recent[%d].PagesRead = %d, want %d", i, got[i].PagesRead, want)
		}
	}
	if got[0].Mechanism != "indexing-scan" {
		t.Errorf("mechanism = %q", got[0].Mechanism)
	}
}

func TestReportAndReset(t *testing.T) {
	tr := New(8)
	if tr.Report() != "no queries recorded" {
		t.Errorf("empty report = %q", tr.Report())
	}
	tr.Record("flights", "airport", stats(true, false, 3, 0, 1))
	rep := tr.Report()
	if !strings.Contains(rep, "flights.airport") || !strings.Contains(rep, "100.0%") {
		t.Errorf("report = %q", rep)
	}
	tr.Reset()
	if tr.Report() != "no queries recorded" || len(tr.Recent(5)) != 0 {
		t.Error("reset did not clear")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record("t", "a", stats(i%2 == 0, false, 1, 1, 0))
				_ = tr.Recent(5)
				_ = tr.Aggregates()
			}
		}()
	}
	wg.Wait()
	aggs := tr.Aggregates()
	if len(aggs) != 1 || aggs[0].Queries != 1600 {
		t.Errorf("aggs = %+v", aggs)
	}
}

// TestTracerStress hammers every tracer entry point — including Reset
// and the span ring — from parallel goroutines; under -race this is the
// monitor-correctness stress test CI runs.
func TestTracerStress(t *testing.T) {
	tr := New(32)
	tr.EnableSpans(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch i % 6 {
				case 0:
					tr.Record("t", "a", stats(i%2 == 0, false, 2, 1, 1))
				case 1:
					tr.RecordFollower("t", "a", stats(false, false, 2, 1, 1))
				case 2:
					tr.Span(SpanMissAdmit, "t.a", -1, 0)
					_ = tr.Spans(10)
				case 3:
					_ = tr.Recent(7)
					_ = tr.Aggregates()
				case 4:
					_ = tr.LatencyStats()
					_ = tr.Report()
				case 5:
					if g == 0 {
						tr.Reset()
					} else {
						_ = tr.SpanCount()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Sequence numbers stay monotonic across concurrent Resets.
	spans := tr.Spans(32)
	for i := 1; i < len(spans); i++ {
		if spans[i-1].Seq <= spans[i].Seq {
			t.Fatalf("spans not newest-first monotonic: %d then %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
}

// TestRecentNegative is the regression test for the Recent(n < 0) panic
// (negative cap passed to make).
func TestRecentNegative(t *testing.T) {
	tr := New(4)
	tr.Record("t", "a", stats(false, false, 1, 0, 0))
	if got := tr.Recent(-1); len(got) != 0 {
		t.Errorf("Recent(-1) = %d events, want 0", len(got))
	}
	if got := tr.Spans(-3); len(got) != 0 {
		t.Errorf("Spans(-3) = %d spans, want 0", len(got))
	}
}

// TestReportMeanMicros covers the µs/query column: WallMicros was
// historically accumulated into the aggregate but never surfaced.
func TestReportMeanMicros(t *testing.T) {
	tr := New(8)
	tr.Record("t", "a", stats(true, false, 1, 0, 0)) // 3ms each
	tr.Record("t", "a", stats(true, false, 1, 0, 0))
	a := tr.Aggregates()[0]
	if got := a.MeanWallMicros(); got != 3000 {
		t.Errorf("MeanWallMicros = %v, want 3000", got)
	}
	rep := tr.Report()
	if !strings.Contains(rep, "µs/query") {
		t.Errorf("report missing µs/query header: %q", rep)
	}
	if !strings.Contains(rep, "3000.0") {
		t.Errorf("report missing mean latency value: %q", rep)
	}
}

func TestLatencyStatsPerMechanism(t *testing.T) {
	tr := New(8)
	tr.Record("t", "a", stats(true, false, 1, 0, 0))  // hit
	tr.Record("t", "a", stats(false, false, 5, 0, 0)) // indexing-scan
	tr.Record("t", "b", stats(false, true, 9, 0, 0))  // full-scan
	tr.RecordFollower("t", "a", stats(false, false, 5, 0, 0))
	tr.RecordFollower("t", "a", stats(true, false, 1, 0, 0)) // follower served as hit

	ls := tr.LatencyStats()
	got := map[string]int{}
	for _, l := range ls {
		got[l.Mechanism] = l.Count
		if l.Count > 0 && l.P50 != 3000 {
			t.Errorf("%s p50 = %v, want 3000", l.Mechanism, l.P50)
		}
	}
	want := map[string]int{"hit": 2, "indexing-scan": 1, "full-scan": 1, "shared-follower": 1}
	for m, n := range want {
		if got[m] != n {
			t.Errorf("mechanism %q count = %d, want %d (all: %v)", m, got[m], n, got)
		}
	}
}

func TestSpansDisabledByDefault(t *testing.T) {
	tr := New(8)
	tr.Span(SpanMissAdmit, "t.a", -1, 0)
	if got := tr.Spans(10); len(got) != 0 {
		t.Errorf("spans recorded while disabled: %v", got)
	}
	if tr.SpansEnabled() {
		t.Error("spans enabled by default")
	}
	if tr.SpanCount() != 0 {
		t.Errorf("SpanCount = %d while disabled", tr.SpanCount())
	}
}

func TestSpanRingOrderAndWrap(t *testing.T) {
	tr := New(3)
	tr.EnableSpans(true)
	for i := 1; i <= 5; i++ {
		tr.Span(SpanPageComplete, "t.a", i, i*10)
	}
	got := tr.Spans(10)
	if len(got) != 3 {
		t.Fatalf("spans = %d, want 3", len(got))
	}
	// Newest first: pages 5, 4, 3 with seq 5, 4, 3.
	for i, want := range []int{5, 4, 3} {
		if got[i].Page != want || got[i].Seq != uint64(want) || got[i].N != want*10 {
			t.Errorf("spans[%d] = %+v, want page/seq %d", i, got[i], want)
		}
		if got[i].Kind != SpanPageComplete || got[i].Target != "t.a" {
			t.Errorf("spans[%d] = %+v", i, got[i])
		}
	}
	if tr.SpanCount() != 5 {
		t.Errorf("SpanCount = %d, want 5", tr.SpanCount())
	}
	// Reset clears the ring but the sequence keeps counting.
	tr.Reset()
	if len(tr.Spans(10)) != 0 {
		t.Error("Reset did not clear spans")
	}
	tr.Span(SpanMissAdmit, "t.a", -1, 0)
	if got := tr.Spans(1); len(got) != 1 || got[0].Seq != 6 {
		t.Errorf("post-Reset span = %+v, want seq 6", got)
	}
}

// TestSpanDisabledZeroAlloc pins the overhead contract: with spans
// disabled, Span is one atomic load and allocates nothing.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	tr := New(8)
	if avg := testing.AllocsPerRun(200, func() {
		tr.Span(SpanPageSelect, "t.a", -1, 12)
	}); avg != 0 {
		t.Errorf("disabled Span allocates %v per call, want 0", avg)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	tr := New(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(SpanMissAdmit, "t.a", -1, 0)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(512)
	tr.EnableSpans(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(SpanMissAdmit, "t.a", -1, 0)
	}
}

func BenchmarkRecord(b *testing.B) {
	tr := New(512)
	st := stats(true, false, 3, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("t", "a", st)
	}
}

func TestCapacityClamp(t *testing.T) {
	tr := New(0)
	tr.Record("t", "a", stats(false, false, 1, 0, 0))
	if got := tr.Recent(5); len(got) != 1 {
		t.Errorf("recent = %d", len(got))
	}
}

// TestRecentSpansClampBoundaries pins the shared clamp behavior of the
// two ring readers at every boundary: negative, zero, partial, exact,
// and oversized n must behave identically for Recent and Spans.
func TestRecentSpansClampBoundaries(t *testing.T) {
	const capacity, recorded = 4, 3
	tr := New(capacity)
	tr.EnableSpans(true)
	for i := 0; i < recorded; i++ {
		tr.Record("t", "a", stats(false, false, 1, 0, 0))
		tr.Span(SpanMissAdmit, "t.a", -1, 0)
	}
	cases := []struct {
		name string
		n    int
		want int
	}{
		{"negative", -1, 0},
		{"very negative", -1 << 30, 0},
		{"zero", 0, 0},
		{"partial", 2, 2},
		{"exact", recorded, recorded},
		{"over filled", recorded + 1, recorded},
		{"over capacity", capacity + 100, recorded},
		{"huge", 1 << 30, recorded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(tr.Recent(tc.n)); got != tc.want {
				t.Errorf("Recent(%d) = %d events, want %d", tc.n, got, tc.want)
			}
			if got := len(tr.Spans(tc.n)); got != tc.want {
				t.Errorf("Spans(%d) = %d spans, want %d", tc.n, got, tc.want)
			}
		})
	}
}

// TestSpanSink covers the telemetry tap: the sink sees every span after
// it enters the ring, respects the span gate, and detaches cleanly.
func TestSpanSink(t *testing.T) {
	tr := New(8)
	var mu sync.Mutex
	var got []Span
	tr.SetSpanSink(func(sp Span) {
		mu.Lock()
		got = append(got, sp)
		mu.Unlock()
	})

	// Gate closed: sink sees nothing.
	tr.Span(SpanDisplace, "t.a", 3, 2)
	if len(got) != 0 {
		t.Fatalf("sink fired while spans disabled: %+v", got)
	}

	tr.EnableSpans(true)
	tr.Span(SpanDisplace, "t.a", 3, 2)
	tr.Span(SpanPageComplete, "t.a", 4, 7)
	if len(got) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(got))
	}
	if got[0].Kind != SpanDisplace || got[0].Page != 3 || got[0].N != 2 {
		t.Errorf("first sunk span = %+v", got[0])
	}
	if got[1].Seq != got[0].Seq+1 {
		t.Errorf("sink spans out of sequence: %d then %d", got[0].Seq, got[1].Seq)
	}

	tr.SetSpanSink(nil)
	tr.Span(SpanMissAdmit, "t.a", -1, 0)
	if len(got) != 2 {
		t.Errorf("sink fired after detach: %d spans", len(got))
	}
	if tr.SpanCount() != 3 {
		t.Errorf("ring recording disturbed by sink lifecycle: %d spans", tr.SpanCount())
	}
}
