// Package sim implements the paper's Figure 3 study: how the share of
// pages *fully indexed* by a partial index depends on the correlation
// between the physical order of tuples and their logical order with
// respect to the indexed column.
//
// The simulation follows the paper's procedure (§II): start from a
// logically ordered tuple sequence (correlation 1), gradually swap
// randomly picked tuples to decrease the correlation, and count fully
// indexed pages at each step. The paper's conclusion — that for ≥10
// tuples per page and correlation ≤0.8 fewer than 5% of pages remain
// fully indexed, so partial indexes alone almost never enable page
// skipping — is the motivation for the Index Buffer.
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Scenario is one curve of Figure 3.
type Scenario struct {
	TuplesPerPage int     // page capacity in tuples
	Coverage      float64 // fraction of tuples covered by the partial index
}

// String renders the scenario for labels.
func (s Scenario) String() string {
	return fmt.Sprintf("%d tuples/page, %.0f%% covered", s.TuplesPerPage, s.Coverage*100)
}

// PaperScenarios returns six scenarios: one per page size, at the 10%
// coverage the paper's evaluation uses for its partial indexes. This
// grid reproduces both Figure 3 anchor points: the clustered share equals
// the coverage, and at "typical page sizes of 10 or more tuples and a
// correlation of 0.8 or less, less than 5% of the pages remain fully
// indexed" — a claim that only holds for small coverage (at 50% coverage
// the share at correlation 0.8 is ~19%), pinning the paper's scenarios to
// its 10% setup.
func PaperScenarios() []Scenario {
	return []Scenario{
		{TuplesPerPage: 2, Coverage: 0.1},
		{TuplesPerPage: 5, Coverage: 0.1},
		{TuplesPerPage: 10, Coverage: 0.1},
		{TuplesPerPage: 20, Coverage: 0.1},
		{TuplesPerPage: 50, Coverage: 0.1},
		{TuplesPerPage: 100, Coverage: 0.1},
	}
}

// Point is one measurement of a scenario sweep.
type Point struct {
	Correlation       float64 // physical/logical rank correlation (Spearman)
	FullyIndexedShare float64 // fraction of pages with every tuple covered
}

// Run sweeps one scenario over tuples tuples: it begins perfectly
// clustered, then performs swapsPerStep random swaps per step for steps
// steps, measuring after each. The first point is the clustered state.
func Run(tuples int, sc Scenario, steps, swapsPerStep int, seed int64) ([]Point, error) {
	if tuples < sc.TuplesPerPage || sc.TuplesPerPage < 1 {
		return nil, fmt.Errorf("sim: %d tuples with %d per page", tuples, sc.TuplesPerPage)
	}
	if sc.Coverage < 0 || sc.Coverage > 1 {
		return nil, fmt.Errorf("sim: coverage %v outside [0, 1]", sc.Coverage)
	}
	rng := rand.New(rand.NewSource(seed))

	// keys[i] is the logical rank of the tuple at physical position i.
	keys := make([]int, tuples)
	for i := range keys {
		keys[i] = i
	}
	coveredBelow := int(sc.Coverage * float64(tuples)) // keys < coveredBelow are in the partial index

	out := []Point{measure(keys, sc.TuplesPerPage, coveredBelow)}
	for s := 0; s < steps; s++ {
		for k := 0; k < swapsPerStep; k++ {
			i, j := rng.Intn(tuples), rng.Intn(tuples)
			keys[i], keys[j] = keys[j], keys[i]
		}
		out = append(out, measure(keys, sc.TuplesPerPage, coveredBelow))
	}
	return out, nil
}

// measure computes the correlation and the fully indexed share of the
// current physical order.
func measure(keys []int, perPage, coveredBelow int) Point {
	return Point{
		Correlation:       rankCorrelation(keys),
		FullyIndexedShare: fullyIndexedShare(keys, perPage, coveredBelow),
	}
}

// fullyIndexedShare counts pages (consecutive runs of perPage tuples)
// whose tuples are all covered. A trailing partial page counts as a page.
func fullyIndexedShare(keys []int, perPage, coveredBelow int) float64 {
	pages := 0
	full := 0
	for start := 0; start < len(keys); start += perPage {
		end := start + perPage
		if end > len(keys) {
			end = len(keys)
		}
		pages++
		allCovered := true
		for i := start; i < end; i++ {
			if keys[i] >= coveredBelow {
				allCovered = false
				break
			}
		}
		if allCovered {
			full++
		}
	}
	return float64(full) / float64(pages)
}

// rankCorrelation is the Spearman correlation between physical position
// and logical rank. Keys are a permutation of 0..n-1, so ranks equal
// keys and Spearman reduces to the Pearson correlation of (i, keys[i]).
func rankCorrelation(keys []int) float64 {
	n := float64(len(keys))
	if n < 2 {
		return 1
	}
	// Σd² form of Spearman's rho for distinct ranks.
	var d2 float64
	for i, k := range keys {
		d := float64(i - k)
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// RankCorrelation exposes the Spearman correlation between physical
// position and logical rank for a key permutation — used by the engine-
// level correlation experiment to label generated tables.
func RankCorrelation(keys []int) float64 { return rankCorrelation(keys) }

// KeysWithCorrelation produces a permutation of 0..n-1 whose rank
// correlation with the identity is approximately target (within ~0.01,
// or as low as random swapping reaches). target 1 returns the identity;
// target <= 0 returns a fully shuffled permutation.
func KeysWithCorrelation(n int, target float64, seed int64) []int {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	if target >= 1 || n < 2 {
		return keys
	}
	if target <= 0 {
		rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		return keys
	}
	// Swap in batches, measuring as we go; batch size keeps the
	// measurement cost O(n) per ~1% correlation drop. The iteration bound
	// guards degenerate cases where random swapping cannot reach the
	// target (tiny n): a full shuffle's worth of swaps is plenty.
	batch := n / 100
	if batch < 1 {
		batch = 1
	}
	for swaps := 0; rankCorrelation(keys) > target && swaps < 4*n+400; swaps += batch {
		for k := 0; k < batch; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}

// ShareAt interpolates the fully indexed share of a sweep at the given
// correlation level (the sweep's correlation decreases monotonically in
// expectation; the nearest measured point is returned).
func ShareAt(points []Point, correlation float64) float64 {
	best := points[0]
	bestDist := math.Abs(points[0].Correlation - correlation)
	for _, p := range points[1:] {
		if d := math.Abs(p.Correlation - correlation); d < bestDist {
			best, bestDist = p, d
		}
	}
	return best.FullyIndexedShare
}
