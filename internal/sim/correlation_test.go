package sim

import (
	"math"
	"testing"
)

func TestRankCorrelation(t *testing.T) {
	sorted := []int{0, 1, 2, 3, 4}
	if got := rankCorrelation(sorted); math.Abs(got-1) > 1e-9 {
		t.Errorf("sorted correlation = %v, want 1", got)
	}
	reversed := []int{4, 3, 2, 1, 0}
	if got := rankCorrelation(reversed); math.Abs(got+1) > 1e-9 {
		t.Errorf("reversed correlation = %v, want -1", got)
	}
	if got := rankCorrelation([]int{0}); got != 1 {
		t.Errorf("singleton correlation = %v", got)
	}
}

func TestFullyIndexedShareClustered(t *testing.T) {
	// 100 tuples, 10/page, 50% covered, clustered: pages 0-4 fully
	// covered.
	keys := make([]int, 100)
	for i := range keys {
		keys[i] = i
	}
	if got := fullyIndexedShare(keys, 10, 50); got != 0.5 {
		t.Errorf("share = %v, want 0.5", got)
	}
	// Coverage cutting through a page: 45 covered -> only 4 full pages.
	if got := fullyIndexedShare(keys, 10, 45); got != 0.4 {
		t.Errorf("share = %v, want 0.4", got)
	}
	// Everything covered.
	if got := fullyIndexedShare(keys, 10, 100); got != 1 {
		t.Errorf("share = %v, want 1", got)
	}
	// Nothing covered.
	if got := fullyIndexedShare(keys, 10, 0); got != 0 {
		t.Errorf("share = %v, want 0", got)
	}
}

func TestFullyIndexedShareTrailingPage(t *testing.T) {
	keys := []int{0, 1, 2, 3, 4} // 2 pages at 3/page: [0 1 2], [3 4]
	if got := fullyIndexedShare(keys, 3, 5); got != 1 {
		t.Errorf("share = %v, want 1", got)
	}
	if got := fullyIndexedShare(keys, 3, 4); got != 0.5 {
		t.Errorf("share = %v, want 0.5 (trailing page broken)", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(5, Scenario{TuplesPerPage: 10, Coverage: 0.5}, 1, 1, 1); err == nil {
		t.Error("fewer tuples than page capacity should fail")
	}
	if _, err := Run(100, Scenario{TuplesPerPage: 10, Coverage: 1.5}, 1, 1, 1); err == nil {
		t.Error("coverage > 1 should fail")
	}
}

func TestRunSweepShape(t *testing.T) {
	// The paper's setup: 10% coverage (its partial indexes cover the top
	// 10% of the value range), 10 tuples per page.
	sc := Scenario{TuplesPerPage: 10, Coverage: 0.1}
	points, err := Run(10000, sc, 300, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := points[0]
	if math.Abs(first.Correlation-1) > 1e-9 {
		t.Errorf("initial correlation = %v", first.Correlation)
	}
	if math.Abs(first.FullyIndexedShare-sc.Coverage) > 0.01 {
		t.Errorf("clustered share = %v, want ~coverage %v (paper: 'corresponds to the number of tuples covered')",
			first.FullyIndexedShare, sc.Coverage)
	}
	last := points[len(points)-1]
	if last.Correlation > 0.3 {
		t.Errorf("sweep did not decorrelate: final correlation %v", last.Correlation)
	}
	// The paper's headline: at correlation <= 0.8 and >= 10 tuples/page,
	// share < 5%.
	if got := ShareAt(points, 0.8); got >= 0.05 {
		t.Errorf("share at correlation 0.8 = %v, want < 0.05", got)
	}
	// Monotone-ish collapse: share never exceeds the clustered share.
	for i, p := range points {
		if p.FullyIndexedShare > first.FullyIndexedShare+1e-9 {
			t.Errorf("point %d share %v exceeds clustered share", i, p.FullyIndexedShare)
		}
	}
}

func TestPaperScenarios(t *testing.T) {
	scs := PaperScenarios()
	if len(scs) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(scs))
	}
	for _, sc := range scs {
		if sc.TuplesPerPage < 1 || sc.Coverage <= 0 || sc.Coverage > 1 {
			t.Errorf("bad scenario %+v", sc)
		}
		if sc.String() == "" {
			t.Error("empty label")
		}
	}
}

func TestKeysWithCorrelation(t *testing.T) {
	// Identity at target 1.
	keys := KeysWithCorrelation(1000, 1.0, 1)
	if RankCorrelation(keys) != 1 {
		t.Errorf("target 1.0 correlation = %v", RankCorrelation(keys))
	}
	for i, k := range keys {
		if k != i {
			t.Fatal("target 1.0 should be the identity permutation")
		}
	}
	// Intermediate targets land close.
	for _, target := range []float64{0.9, 0.7, 0.4} {
		keys := KeysWithCorrelation(5000, target, 2)
		got := RankCorrelation(keys)
		if math.Abs(got-target) > 0.05 {
			t.Errorf("target %.1f: measured %.3f", target, got)
		}
		// Still a permutation.
		seen := make([]bool, len(keys))
		for _, k := range keys {
			if k < 0 || k >= len(keys) || seen[k] {
				t.Fatal("not a permutation")
			}
			seen[k] = true
		}
	}
	// Full shuffle at target <= 0.
	keys = KeysWithCorrelation(5000, 0, 3)
	if got := RankCorrelation(keys); math.Abs(got) > 0.1 {
		t.Errorf("target 0: measured %.3f", got)
	}
	// Tiny n does not loop forever.
	_ = KeysWithCorrelation(1, 0.5, 4)
	_ = KeysWithCorrelation(2, 0.5, 5)
}
