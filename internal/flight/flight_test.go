package flight

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// spin burns until the monotonic clock visibly advances, so a record
// completed after it has DurationNanos >= 1 without sleeping.
func spin() {
	t0 := time.Now()
	for time.Since(t0) <= 0 {
	}
}

func TestMechanismPriority(t *testing.T) {
	cases := []struct {
		hit, follower, full, degraded bool
		want                          string
	}{
		{true, true, true, true, "hit"},
		{false, true, true, true, "shared-follower"},
		{false, false, true, true, "full-scan"},
		{false, false, false, true, "degraded-scan"},
		{false, false, false, false, "indexing-scan"},
	}
	for _, c := range cases {
		if got := Mechanism(c.hit, c.follower, c.full, c.degraded); got != c.want {
			t.Errorf("Mechanism(%v,%v,%v,%v) = %q, want %q",
				c.hit, c.follower, c.full, c.degraded, got, c.want)
		}
	}
}

func TestActiveNilSafe(t *testing.T) {
	var a *Active
	a.Span("page-select", "t.a", 3, 10)
	a.Query("t", "a", "hit", 1, 2, 3, false)
	a.WAL(time.Millisecond, 4)
	if a.Trace() != "" {
		t.Error("nil Active has a trace")
	}
	if FromContext(context.Background()) != nil {
		t.Error("bare context yields an Active")
	}
	r := NewRecorder(4, 4)
	r.Complete(nil, nil) // must not panic or count
	if r.Stats().Completed != 0 {
		t.Error("nil Complete counted")
	}
}

func TestActiveAccumulation(t *testing.T) {
	r := NewRecorder(4, 4)
	r.Enable(time.Hour)
	a, ctx := r.Begin(WithTrace(context.Background(), "trace-1"), "acme", "SELECT 1")
	if got := a.Trace(); got != "trace-1" {
		t.Fatalf("Begin dropped the wire trace: %q", got)
	}
	if FromContext(ctx) != a {
		t.Fatal("Begin did not attach the Active to the context")
	}
	a.Query("t", "a", "indexing-scan", 5, 10, 2, false)
	a.Query("t", "a", "hit", 7, 3, 1, true) // last mechanism wins, pages accumulate
	a.Span("scan-lead", "t.a", -1, 2)
	a.Span("page-complete", "t.a", 9, 40)
	a.WAL(2*time.Millisecond, 3)
	a.WAL(3*time.Millisecond, 5)
	r.Complete(a, errors.New("boom"))

	recs := r.Recent(0)
	if len(recs) != 1 {
		t.Fatalf("Recent = %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Trace != "trace-1" || rec.Tenant != "acme" || rec.Stmt != "SELECT 1" {
		t.Errorf("identity fields wrong: %+v", rec)
	}
	if rec.Mechanism != "hit" || rec.Matches != 7 {
		t.Errorf("last Query should win: %+v", rec)
	}
	if rec.PagesRead != 13 || rec.PagesSkipped != 3 || !rec.QuotaDegraded {
		t.Errorf("page accounting should accumulate: %+v", rec)
	}
	if rec.WALCommitNanos != int64(5*time.Millisecond) || rec.WALBatch != 5 {
		t.Errorf("WAL accounting wrong: %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Kind != "scan-lead" || rec.Spans[1].Page != 9 {
		t.Errorf("span tree wrong: %+v", rec.Spans)
	}
	if rec.Error != "boom" {
		t.Errorf("error not stamped: %q", rec.Error)
	}
	if rec.Duration() < 0 {
		t.Errorf("negative duration: %v", rec.Duration())
	}
}

func TestMintIDUnique(t *testing.T) {
	r := NewRecorder(1, 1)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := r.MintID()
		if !strings.HasPrefix(id, "aib-") {
			t.Fatalf("minted ID %q lacks the aib- prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate minted ID %q", id)
		}
		seen[id] = true
	}
	// Begin with no wire trace mints.
	a, _ := r.Begin(context.Background(), "", "X")
	if !strings.HasPrefix(a.Trace(), "aib-") {
		t.Errorf("Begin did not mint: %q", a.Trace())
	}
}

// complete runs one Begin/Complete pair; slow forces the record over a
// 1ns threshold.
func complete(r *Recorder, trace, tenant string, slow bool) {
	a, _ := r.Begin(WithTrace(context.Background(), trace), tenant, "stmt "+trace)
	if slow {
		spin()
	}
	r.Complete(a, nil)
}

func TestRingsEvictionAndSlowCapture(t *testing.T) {
	r := NewRecorder(4, 2)
	r.Enable(time.Hour) // nothing is slow yet
	for i := 0; i < 7; i++ {
		complete(r, fmt.Sprintf("t%d", i), "", false)
	}
	recs := r.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("recent ring holds %d, want capacity 4", len(recs))
	}
	for i, want := range []string{"t6", "t5", "t4", "t3"} {
		if recs[i].Trace != want {
			t.Errorf("Recent[%d].Trace = %q, want %q (newest first)", i, recs[i].Trace, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Trace != "t6" {
		t.Errorf("Recent(2) = %+v", got)
	}
	if len(r.Slow(0)) != 0 {
		t.Error("slow ring populated below threshold")
	}

	r.Enable(1) // everything with a measurable duration is slow now
	for i := 0; i < 3; i++ {
		complete(r, fmt.Sprintf("s%d", i), "", true)
	}
	slow := r.Slow(0)
	if len(slow) != 2 {
		t.Fatalf("slow ring holds %d, want capacity 2", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i-1].DurationNanos < slow[i].DurationNanos {
			t.Errorf("Slow not sorted slowest-first: %v then %v",
				slow[i-1].DurationNanos, slow[i].DurationNanos)
		}
	}
	st := r.Stats()
	if st.Completed != 10 || st.Slow != 3 {
		t.Errorf("Stats = %+v, want Completed 10, Slow 3", st)
	}

	r.Reset()
	if len(r.Recent(0)) != 0 || len(r.Slow(0)) != 0 {
		t.Error("Reset left records behind")
	}
	if got := r.Stats(); got.Completed != 10 {
		t.Errorf("Reset cleared counters: %+v", got)
	}
}

func TestFindFiltersAndDedup(t *testing.T) {
	r := NewRecorder(8, 4)
	r.Enable(1)
	complete(r, "tr-a", "acme", true) // in recent AND slow: must dedup
	complete(r, "tr-b", "tiny", false)
	complete(r, "tr-b", "acme", true)

	if got := r.Find("tr-a", "", 0, 0); len(got) != 1 || got[0].Trace != "tr-a" {
		t.Errorf("Find(trace) = %+v, want exactly the deduped tr-a record", got)
	}
	if got := r.Find("", "acme", 0, 0); len(got) != 2 {
		t.Errorf("Find(tenant acme) = %d records, want 2", len(got))
	}
	got := r.Find("tr-b", "tiny", 0, 0)
	if len(got) != 1 || got[0].Tenant != "tiny" {
		t.Errorf("Find(trace+tenant) = %+v", got)
	}
	if got := r.Find("", "", time.Hour, 0); len(got) != 0 {
		t.Errorf("Find(minDur=1h) = %+v, want none", got)
	}
	all := r.Find("", "", 0, 0)
	if len(all) != 3 {
		t.Fatalf("Find(all) = %d records, want 3 after dedup", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq < all[i].Seq {
			t.Error("Find not newest-first")
		}
	}
	if got := r.Find("", "", 0, 2); len(got) != 2 {
		t.Errorf("Find(n=2) = %d records", len(got))
	}
}

func TestSinkReceivesCompletions(t *testing.T) {
	r := NewRecorder(2, 2)
	r.Enable(time.Hour)
	var mu sync.Mutex
	var got []Record
	r.SetSink(func(rec Record) {
		mu.Lock()
		got = append(got, rec)
		mu.Unlock()
	})
	complete(r, "tr-1", "", false)
	r.SetSink(nil)
	complete(r, "tr-2", "", false)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Trace != "tr-1" {
		t.Errorf("sink saw %+v, want exactly tr-1", got)
	}
}

// TestFlightDisabledIsInert pins the overhead contract: the disabled
// gates — Recorder.Enabled (including on a nil recorder), FromContext
// and every nil-Active method — allocate nothing.
func TestFlightDisabledIsInert(t *testing.T) {
	r := NewRecorder(4, 4)
	ctx := context.Background()
	var nilRec *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		if r.Enabled() || nilRec.Enabled() {
			t.Fatal("recorder enabled by default")
		}
		a := FromContext(ctx)
		a.Span("page-select", "t.a", 1, 2)
		a.Query("t", "a", "hit", 1, 1, 0, false)
		a.WAL(time.Millisecond, 1)
		_ = a.Trace()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
	if r.Stats().Completed != 0 || len(r.Recent(0)) != 0 {
		t.Error("disabled recorder retained state")
	}
}

// TestConcurrentRecorder exercises every public surface at once under
// the race detector: writers completing records, readers snapshotting
// all three views, a resetter, and enable/disable flapping.
func TestConcurrentRecorder(t *testing.T) {
	r := NewRecorder(16, 8)
	r.Enable(1)
	const writers, perWriter, readers = 4, 200, 3
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				a, _ := r.Begin(context.Background(), fmt.Sprintf("tn%d", w), "stmt")
				a.Span("scan-lead", "t.a", -1, 1)
				a.Query("t", "a", "indexing-scan", 1, 2, 0, false)
				var err error
				if i%7 == 0 {
					err = errors.New("synthetic")
				}
				r.Complete(a, err)
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Recent(8)
				_ = r.Slow(4)
				_ = r.Find("", fmt.Sprintf("tn%d", g), 0, 8)
				_ = r.Stats()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				r.Reset()
			}
			r.Enable(0)
		}
	}()

	// Writers finish on their own; stop the readers and resetter once
	// every completion has been counted.
	for r.Stats().Completed < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := r.Stats().Completed; got != writers*perWriter {
		t.Errorf("Completed = %d, want %d", got, writers*perWriter)
	}
	for _, rec := range r.Recent(0) {
		if rec.Trace == "" || rec.Stmt != "stmt" {
			t.Errorf("torn record in ring: %+v", rec)
		}
	}
}
