// Package flight is the per-statement flight recorder: a bounded ring
// of completed query records, each carrying the statement's trace ID,
// tenant, mechanism, span tree, page counters and WAL commit cost — the
// after-the-fact view the global span stream (internal/trace) cannot
// give, because spans there are uncorrelated across concurrent
// statements.
//
// The package is a leaf (stdlib only) so every layer — engine, shell,
// server, obs, timeline — can import it without cycles. Trace IDs and
// the in-progress record travel via context.Context: the wire layer
// mints (or accepts) a trace ID and stores it with WithTrace; the
// statement layer calls Recorder.Begin to open an Active and re-derive
// the context; execution layers retrieve it with FromContext and
// contribute spans and stats. Every *Active method is nil-receiver
// safe, so contributors call unconditionally on whatever FromContext
// returned.
//
// Overhead contract (DESIGN.md §16): when the recorder is disabled no
// Active exists, every contribution site is gated on one atomic load
// (Recorder.Enabled or the nil Active), and nothing allocates —
// mirroring the tracer/timeline discipline, enforced by
// TestFlightDisabledIsInert and BenchmarkTraceOverhead.
package flight

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named event attributed to a single statement — the same
// vocabulary as trace.Span (page-select, displace, scan-lead, ...), but
// collected per query instead of into the global ring.
type Span struct {
	Kind   string `json:"kind"`
	Target string `json:"target,omitempty"`
	Page   int    `json:"page"`
	N      int    `json:"n"`
}

// Record is one completed statement's flight record.
type Record struct {
	// Seq is a recorder-wide monotonic completion number; it makes
	// records from the recent and slow rings dedupable.
	Seq    uint64 `json:"seq"`
	Trace  string `json:"trace"`
	Tenant string `json:"tenant,omitempty"`
	// Stmt is the statement text as received by the statement layer.
	Stmt string `json:"stmt,omitempty"`

	// Query attribution (empty for DDL/utility statements).
	Table     string `json:"table,omitempty"`
	Column    string `json:"column,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`

	Matches       int  `json:"matches"`
	PagesRead     int  `json:"pages_read"`
	PagesSkipped  int  `json:"pages_skipped"`
	QuotaDegraded bool `json:"quota_degraded,omitempty"`

	// WALCommitNanos is the wall time the statement spent in
	// Append+Commit making its DML durable (0 for read-only statements
	// or when the WAL is disabled); WALBatch is the size of the
	// group-commit batch whose fsync covered it.
	WALCommitNanos int64  `json:"wal_commit_ns,omitempty"`
	WALBatch       uint64 `json:"wal_batch,omitempty"`

	StartUnixNanos int64  `json:"start_unix_ns"`
	DurationNanos  int64  `json:"duration_ns"`
	Error          string `json:"error,omitempty"`

	Spans []Span `json:"spans,omitempty"`
}

// Duration returns the statement's wall time.
func (r Record) Duration() time.Duration { return time.Duration(r.DurationNanos) }

// Mechanism derives the per-query mechanism label from the executor's
// outcome flags, matching the tracer's vocabulary exactly.
func Mechanism(partialHit, follower, fullScan, degraded bool) string {
	switch {
	case partialHit:
		return "hit"
	case follower:
		return "shared-follower"
	case fullScan:
		return "full-scan"
	case degraded:
		return "degraded-scan"
	default:
		return "indexing-scan"
	}
}

// Active is one in-progress statement record. Span contributions may
// arrive concurrently (parallel scan workers, core observer callbacks
// under Space.mu), so the span list is mutex-guarded; the mutex is a
// strict leaf — no Active method calls out while holding it. All
// methods are nil-receiver safe no-ops.
type Active struct {
	mu  sync.Mutex
	rec Record
}

// Trace returns the statement's trace ID ("" on a nil Active).
func (a *Active) Trace() string {
	if a == nil {
		return ""
	}
	return a.rec.Trace
}

// Span appends one span event to the statement's span tree.
func (a *Active) Span(kind, target string, page, n int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Spans = append(a.rec.Spans, Span{Kind: kind, Target: target, Page: page, N: n})
	a.mu.Unlock()
}

// Query records the statement's query outcome: attribution, mechanism
// and the paper's page accounting. The last call wins (a statement
// evaluates at most one query; DML paths that pre-read via a query keep
// the final outcome).
func (a *Active) Query(table, column, mechanism string, matches, pagesRead, pagesSkipped int, degraded bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Table = table
	a.rec.Column = column
	a.rec.Mechanism = mechanism
	a.rec.Matches = matches
	a.rec.PagesRead += pagesRead
	a.rec.PagesSkipped += pagesSkipped
	a.rec.QuotaDegraded = a.rec.QuotaDegraded || degraded
	a.mu.Unlock()
}

// WAL accumulates the statement's WAL commit cost and notes the
// group-commit batch that made it durable. DML statements touching
// several records (UPDATE over many matches) accumulate.
func (a *Active) WAL(commit time.Duration, batch uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.WALCommitNanos += int64(commit)
	a.rec.WALBatch = batch
	a.mu.Unlock()
}

type ctxKey int

const (
	traceKey ctxKey = iota
	activeKey
)

// WithTrace stores a wire-supplied trace ID in the context. The
// statement layer's Begin adopts it; an empty id is ignored.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey, id)
}

// TraceID returns the trace ID stored by WithTrace ("" if none).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// WithActive attaches an in-progress record to the context.
func WithActive(ctx context.Context, a *Active) context.Context {
	return context.WithValue(ctx, activeKey, a)
}

// FromContext returns the in-progress record, or nil — and every
// *Active method is a nil-safe no-op, so callers need not check.
func FromContext(ctx context.Context) *Active {
	a, _ := ctx.Value(activeKey).(*Active)
	return a
}

// Stats is the recorder's counter snapshot for /metrics.
type Stats struct {
	Enabled   bool          `json:"enabled"`
	Completed uint64        `json:"completed"`
	Slow      uint64        `json:"slow"`
	Threshold time.Duration `json:"threshold"`
}

// Recorder keeps the two bounded rings of completed records: every
// completion enters the recent ring (eviction by age), and completions
// at or above the slow threshold additionally enter the slow ring. Both
// rings survive Reset-free indefinitely under constant memory.
type Recorder struct {
	on     atomic.Bool
	slowNS atomic.Int64 // capture threshold; records at/above enter slow ring

	seq       atomic.Uint64
	completed atomic.Uint64
	slowSeen  atomic.Uint64

	mintBase uint64        // per-process base so minted IDs don't collide across restarts
	mintN    atomic.Uint64 // counter under the base

	sink atomic.Pointer[func(Record)]

	mu       sync.Mutex // guards the rings; strict leaf, never held calling out
	recent   []Record
	recentN  int // next write slot
	recentSz int // filled count
	slow     []Record
	slowN    int
	slowSz   int
}

// DefaultSlowThreshold is the slow-capture cutoff used by Enable when
// the caller passes 0.
const DefaultSlowThreshold = 10 * time.Millisecond

// NewRecorder creates a disabled recorder with the given ring
// capacities (min 1 each).
func NewRecorder(recentCap, slowCap int) *Recorder {
	if recentCap < 1 {
		recentCap = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	r := &Recorder{
		recent:   make([]Record, recentCap),
		slow:     make([]Record, slowCap),
		mintBase: uint64(time.Now().UnixNano()),
	}
	r.slowNS.Store(int64(DefaultSlowThreshold))
	return r
}

// Enabled reports whether statements are being recorded — the one
// atomic load every gate performs.
func (r *Recorder) Enabled() bool { return r != nil && r.on.Load() }

// Enable turns recording on with the given slow-capture threshold
// (0 keeps the current threshold, initially DefaultSlowThreshold).
func (r *Recorder) Enable(slowThreshold time.Duration) {
	if slowThreshold > 0 {
		r.slowNS.Store(int64(slowThreshold))
	}
	r.on.Store(true)
}

// Disable stops recording. Existing records remain readable.
func (r *Recorder) Disable() { r.on.Store(false) }

// SlowThreshold returns the current slow-capture cutoff.
func (r *Recorder) SlowThreshold() time.Duration { return time.Duration(r.slowNS.Load()) }

// SetSink installs a hook invoked (synchronously, outside the ring
// lock) with every completed record — the JSONL telemetry bridge. Pass
// nil to remove.
func (r *Recorder) SetSink(fn func(Record)) {
	if fn == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&fn)
}

// MintID mints a process-unique trace ID for statements that arrived
// without one.
func (r *Recorder) MintID() string {
	return "aib-" + strconv.FormatUint(r.mintBase, 36) + "-" + strconv.FormatUint(r.mintN.Add(1), 36)
}

// Begin opens an Active for one statement and returns the context the
// statement must be evaluated under. The trace ID is taken from the
// context (wire-supplied) or minted. Callers gate on Enabled — Begin
// itself allocates.
func (r *Recorder) Begin(ctx context.Context, tenant, stmt string) (*Active, context.Context) {
	trace := TraceID(ctx)
	if trace == "" {
		trace = r.MintID()
	}
	a := &Active{rec: Record{
		Trace:          trace,
		Tenant:         tenant,
		Stmt:           stmt,
		StartUnixNanos: time.Now().UnixNano(),
	}}
	return a, WithActive(ctx, a)
}

// Complete finalizes the Active and publishes it into the rings (and
// the sink, if installed). Safe to call with a nil Active.
func (r *Recorder) Complete(a *Active, err error) {
	if a == nil {
		return
	}
	a.mu.Lock()
	rec := a.rec
	a.mu.Unlock()
	rec.DurationNanos = time.Now().UnixNano() - rec.StartUnixNanos
	if err != nil {
		rec.Error = err.Error()
	}
	rec.Seq = r.seq.Add(1)
	r.completed.Add(1)
	slow := rec.DurationNanos >= r.slowNS.Load()
	if slow {
		r.slowSeen.Add(1)
	}
	r.mu.Lock()
	r.recent[r.recentN] = rec
	r.recentN = (r.recentN + 1) % len(r.recent)
	if r.recentSz < len(r.recent) {
		r.recentSz++
	}
	if slow {
		r.slow[r.slowN] = rec
		r.slowN = (r.slowN + 1) % len(r.slow)
		if r.slowSz < len(r.slow) {
			r.slowSz++
		}
	}
	r.mu.Unlock()
	if fn := r.sink.Load(); fn != nil {
		(*fn)(rec)
	}
}

// snapshotLocked copies a ring newest-first. Caller holds r.mu.
func snapshotLocked(ring []Record, next, size int) []Record {
	out := make([]Record, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, ring[((next-1-i)%len(ring)+len(ring))%len(ring)])
	}
	return out
}

// Recent returns up to n most recent records, newest first (n <= 0
// means all retained).
func (r *Recorder) Recent(n int) []Record {
	r.mu.Lock()
	out := snapshotLocked(r.recent, r.recentN, r.recentSz)
	r.mu.Unlock()
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slow returns up to n captured slow records, slowest first (n <= 0
// means all retained).
func (r *Recorder) Slow(n int) []Record {
	r.mu.Lock()
	out := snapshotLocked(r.slow, r.slowN, r.slowSz)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurationNanos > out[j].DurationNanos })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Find filters both rings (deduped by Seq, newest first): trace and
// tenant match exactly when non-empty, minDur keeps records at least
// that slow, n bounds the result (<= 0 means no bound).
func (r *Recorder) Find(trace, tenant string, minDur time.Duration, n int) []Record {
	r.mu.Lock()
	recs := snapshotLocked(r.recent, r.recentN, r.recentSz)
	recs = append(recs, snapshotLocked(r.slow, r.slowN, r.slowSz)...)
	r.mu.Unlock()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq > recs[j].Seq })
	seen := make(map[uint64]bool, len(recs))
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if seen[rec.Seq] {
			continue
		}
		seen[rec.Seq] = true
		if trace != "" && rec.Trace != trace {
			continue
		}
		if tenant != "" && rec.Tenant != tenant {
			continue
		}
		if rec.DurationNanos < int64(minDur) {
			continue
		}
		out = append(out, rec)
		if n > 0 && len(out) >= n {
			break
		}
	}
	return out
}

// Reset drops all retained records; counters and enablement persist.
func (r *Recorder) Reset() {
	r.mu.Lock()
	for i := range r.recent {
		r.recent[i] = Record{}
	}
	for i := range r.slow {
		r.slow[i] = Record{}
	}
	r.recentN, r.recentSz, r.slowN, r.slowSz = 0, 0, 0, 0
	r.mu.Unlock()
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() Stats {
	return Stats{
		Enabled:   r.on.Load(),
		Completed: r.completed.Load(),
		Slow:      r.slowSeen.Load(),
		Threshold: r.SlowThreshold(),
	}
}
