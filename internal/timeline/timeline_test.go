package timeline

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// mkBuf builds a real IndexBuffer whose coverage is determined by the
// uncovered-counter array: pages with counter 0 are skippable.
func mkBuf(t *testing.T, name string, uncovered []int) *core.IndexBuffer {
	t.Helper()
	s := core.NewSpace(core.Config{})
	b, err := s.CreateBuffer(name, uncovered)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMechanismString(t *testing.T) {
	want := map[Mechanism]string{
		MechHit:          "hit",
		MechIndexingScan: "indexing-scan",
		MechFullScan:     "full-scan",
		MechFollower:     "shared-follower",
		Mechanism(99):    "unknown",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("Mechanism(%d).String() = %q, want %q", m, got, s)
		}
	}
}

func TestTimelineDisabledIsInert(t *testing.T) {
	r := New(0, 0)
	if r.Enabled() {
		t.Fatal("recorder enabled by default")
	}
	buf := mkBuf(t, "t.a", []int{0, 0})
	allocs := testing.AllocsPerRun(100, func() {
		r.ObserveQuery("t", "a", MechHit, buf, nil)
		r.NoteEvent("displace", "t.a", 0, 3)
		r.Resample("t.a", buf)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates: %v allocs/op", allocs)
	}
	if r.SampleCount() != 0 || len(r.Series()) != 0 || r.TakeDirty() != nil {
		t.Error("disabled recorder retained state")
	}
}

func TestTimelineRingEvictionAndDropped(t *testing.T) {
	r := New(4, 0.95)
	r.Enable(true)
	buf := mkBuf(t, "t.a", []int{0, 1})
	for i := 0; i < 10; i++ {
		r.ObserveQuery("t", "a", MechIndexingScan, buf, nil)
	}
	s, ok := r.SeriesFor("t.a")
	if !ok {
		t.Fatal("series missing")
	}
	if len(s.Samples) != 4 {
		t.Fatalf("retained %d samples, want 4", len(s.Samples))
	}
	if s.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped)
	}
	for i, sm := range s.Samples {
		if want := uint64(7 + i); sm.Query != want {
			t.Errorf("sample %d ordinal = %d, want %d (oldest-first)", i, sm.Query, want)
		}
	}
	if r.SampleCount() != 10 {
		t.Errorf("SampleCount = %d, want 10 (survives eviction)", r.SampleCount())
	}
	if s.Table != "t" || s.Column != "a" {
		t.Errorf("series identity = %q.%q", s.Table, s.Column)
	}
}

func TestTimelineSampleFields(t *testing.T) {
	r := New(8, 0.95)
	r.Enable(true)
	// Counters {0, 2, 5, 0}: 2 of 4 skippable, non-zero distribution {2, 5}.
	buf := mkBuf(t, "t.a", []int{0, 2, 5, 0})
	r.ObserveQuery("t", "a", MechHit, buf, nil)
	s, _ := r.SeriesFor("t.a")
	sm := s.Samples[0]
	if sm.Event != EventQuery || sm.Query != 1 {
		t.Errorf("event/ordinal = %q/%d", sm.Event, sm.Query)
	}
	if sm.TotalPages != 4 || sm.Skippable != 2 || sm.Coverage != 0.5 {
		t.Errorf("coverage fields = %d/%d/%g", sm.TotalPages, sm.Skippable, sm.Coverage)
	}
	if sm.CMin != 2 || sm.CMax != 5 {
		t.Errorf("counter distribution = min %d max %d, want 2/5", sm.CMin, sm.CMax)
	}
	if sm.Hits != 1 || sm.IndexingScans != 0 {
		t.Errorf("mechanism mix = hits %d ix %d", sm.Hits, sm.IndexingScans)
	}
	if sm.UnixMicros == 0 {
		t.Error("UnixMicros not stamped")
	}
}

func TestTimelineNilBufferQueryMixOnly(t *testing.T) {
	r := New(8, 0.95)
	r.Enable(true)
	r.ObserveQuery("t", "a", MechFullScan, nil, nil)
	s, _ := r.SeriesFor("t.a")
	sm := s.Samples[0]
	if sm.TotalPages != 0 || sm.Coverage != 0 {
		t.Errorf("nil buffer sampled as %d pages, coverage %g", sm.TotalPages, sm.Coverage)
	}
	if sm.FullScans != 1 {
		t.Errorf("full scans = %d", sm.FullScans)
	}
}

func TestConvergenceAchieveRegressRecover(t *testing.T) {
	r := New(16, 0.75)
	r.Enable(true)
	low := mkBuf(t, "t.a", []int{1, 1, 1, 0})  // coverage 0.25
	high := mkBuf(t, "t.b", []int{0, 0, 0, 1}) // coverage 0.75

	r.ObserveQuery("t", "a", MechIndexingScan, low, nil)
	c := r.Convergence()[0]
	if c.Achieved || c.Regressed {
		t.Fatalf("premature verdict: %+v", c)
	}
	if c.Coverage != 0.25 || c.MaxCoverage != 0.25 {
		t.Errorf("coverage tracking = %g/%g", c.Coverage, c.MaxCoverage)
	}

	r.ObserveQuery("t", "a", MechIndexingScan, high, nil)
	c = r.Convergence()[0]
	if !c.Achieved || c.QueriesToTarget != 2 {
		t.Fatalf("achieve not detected: %+v", c)
	}

	// Coverage drops below target after achieving: regression.
	r.ObserveQuery("t", "a", MechIndexingScan, low, nil)
	c = r.Convergence()[0]
	if !c.Regressed || c.RegressedAt != 3 {
		t.Fatalf("regression not flagged: %+v", c)
	}
	if !c.Achieved || c.QueriesToTarget != 2 {
		t.Errorf("achieve history lost on regression: %+v", c)
	}

	// Recovery clears the flag but keeps the first-crossing ordinal.
	r.ObserveQuery("t", "a", MechIndexingScan, high, nil)
	c = r.Convergence()[0]
	if c.Regressed {
		t.Errorf("regression flag not cleared on recovery: %+v", c)
	}
	if c.QueriesToTarget != 2 || c.Queries != 4 {
		t.Errorf("ordinals after recovery: %+v", c)
	}
	if c.Target != 0.75 {
		t.Errorf("target = %g", c.Target)
	}
}

// TestConvergenceBufferResetStartsNewEpisode pins the episode
// semantics: a buffer-reset event (partial index dropped or redefined)
// clears the stale "converged" verdict — the detector would otherwise
// report the old buffer's achievement for its fresh replacement,
// flagging the rebuild as a mere regression.
func TestConvergenceBufferResetStartsNewEpisode(t *testing.T) {
	r := New(16, 0.75)
	r.Enable(true)
	high := mkBuf(t, "t.a", []int{0, 0, 0, 1}) // coverage 0.75
	low := mkBuf(t, "t.a", []int{1, 1, 1, 0})  // coverage 0.25

	r.ObserveQuery("t", "a", MechIndexingScan, high, nil)
	if c := r.Convergence()[0]; !c.Achieved || c.QueriesToTarget != 1 {
		t.Fatalf("setup verdict: %+v", c)
	}

	// The index is redefined: the buffer is dropped and recreated.
	r.NoteEvent("buffer-reset", "t.a", -1, 3)
	c := r.Convergence()[0]
	if c.Achieved || c.Regressed || c.QueriesToTarget != 0 {
		t.Fatalf("stale verdict survived buffer reset: %+v", c)
	}
	if c.Resets != 1 {
		t.Errorf("Resets = %d, want 1", c.Resets)
	}
	if c.MaxCoverage != 0 {
		t.Errorf("MaxCoverage = %g, want 0 after reset", c.MaxCoverage)
	}
	if d := r.TakeDirty(); len(d) != 1 || d[0] != "t.a" {
		t.Errorf("buffer-reset did not dirty the series: %v", d)
	}

	// The fresh buffer starts low, then re-achieves: the second episode
	// gets its own crossing ordinal, not the first's.
	r.ObserveQuery("t", "a", MechIndexingScan, low, nil)
	if c := r.Convergence()[0]; c.Achieved || c.Regressed {
		t.Fatalf("new episode inherited old verdict: %+v", c)
	}
	r.ObserveQuery("t", "a", MechIndexingScan, high, nil)
	c = r.Convergence()[0]
	if !c.Achieved || c.QueriesToTarget != 3 {
		t.Fatalf("re-achievement verdict: %+v", c)
	}
	if c.Resets != 1 || c.Queries != 3 {
		t.Errorf("episode bookkeeping: %+v", c)
	}
}

func TestNoteEventDirtyResample(t *testing.T) {
	r := New(8, 0.95)
	r.Enable(true)
	victim := mkBuf(t, "u.b", []int{0, 3})
	queried := mkBuf(t, "t.a", []int{0})

	r.NoteEvent("displace", "u.b", 1, 5)
	r.NoteEvent("page-complete", "u.b", 1, 0)
	r.NoteEvent("scan-start", "u.b", 0, 0) // not a churn event: ignored

	resolved := map[string]*core.IndexBuffer{"u.b": victim}
	r.ObserveQuery("t", "a", MechHit, queried, func(name string) *core.IndexBuffer {
		return resolved[name]
	})

	s, ok := r.SeriesFor("u.b")
	if !ok {
		t.Fatal("victim series missing")
	}
	if len(s.Samples) != 1 || s.Samples[0].Event != EventResample {
		t.Fatalf("victim samples = %+v", s.Samples)
	}
	sm := s.Samples[0]
	if sm.Displacements != 1 || sm.DisplacedEntries != 5 || sm.PageCompletes != 1 {
		t.Errorf("churn counters = %d/%d/%d", sm.Displacements, sm.DisplacedEntries, sm.PageCompletes)
	}
	// The queried buffer's own boundary sample cleared its dirty mark;
	// nothing is left pending.
	if d := r.TakeDirty(); d != nil {
		t.Errorf("dirty set not drained: %v", d)
	}
}

func TestTakeDirtySortedAndCleared(t *testing.T) {
	r := New(8, 0.95)
	r.Enable(true)
	r.NoteEvent("displace", "z.z", 0, 1)
	r.NoteEvent("displace", "a.a", 0, 1)
	got := r.TakeDirty()
	if len(got) != 2 || got[0] != "a.a" || got[1] != "z.z" {
		t.Fatalf("TakeDirty = %v, want sorted [a.a z.z]", got)
	}
	if again := r.TakeDirty(); again != nil {
		t.Errorf("second TakeDirty = %v, want nil", again)
	}
}

func TestRecorderReset(t *testing.T) {
	r := New(8, 0.95)
	r.Enable(true)
	r.ObserveQuery("t", "a", MechHit, nil, nil)
	before := r.SampleCount()
	r.Reset()
	if len(r.Series()) != 0 {
		t.Error("Reset left series behind")
	}
	r.ObserveQuery("t", "a", MechHit, nil, nil)
	if r.SampleCount() != before+1 {
		t.Errorf("sample count restarted: %d", r.SampleCount())
	}
}

func TestSinkRoundTrip(t *testing.T) {
	var out bytes.Buffer
	sink := NewSink(&out)
	r := New(8, 0.95)
	r.Enable(true)
	r.SetSink(sink)

	buf := mkBuf(t, "t.a", []int{0, 1})
	r.ObserveQuery("t", "a", MechIndexingScan, buf, nil)
	r.ObserveQuery("t", "a", MechHit, buf, nil)
	sink.WriteSpan(SpanRecord{Seq: 7, Kind: "displace", Target: "t.a", Page: 3, N: 2})

	if st := sink.Stats(); st.Lines != 3 || st.Errors != 0 {
		t.Fatalf("sink stats = %+v", st)
	}

	var samples []SampleRecord
	var spans []SpanRecord
	n, err := ScanRecords(&out,
		func(rec SampleRecord) error { samples = append(samples, rec); return nil },
		func(rec SpanRecord) error { spans = append(spans, rec); return nil },
	)
	if err != nil || n != 3 {
		t.Fatalf("ScanRecords = %d, %v", n, err)
	}
	if len(samples) != 2 || len(spans) != 1 {
		t.Fatalf("decoded %d samples, %d spans", len(samples), len(spans))
	}
	if samples[0].Buffer != "t.a" || samples[0].Table != "t" || samples[0].Column != "a" {
		t.Errorf("sample envelope = %+v", samples[0])
	}
	if samples[0].Query != 1 || samples[1].Query != 2 {
		t.Errorf("sample ordinals = %d, %d", samples[0].Query, samples[1].Query)
	}
	if samples[1].Coverage != 0.5 || samples[1].Hits != 1 {
		t.Errorf("replayed sample = %+v", samples[1].Sample)
	}
	if spans[0].Kind != "displace" || spans[0].Seq != 7 || spans[0].N != 2 {
		t.Errorf("replayed span = %+v", spans[0])
	}
}

func TestScanRecordsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"bad json", "{\"type\": \"sample\"\n", "line 1"},
		{"unknown type", "{\"type\":\"sample\",\"buffer\":\"x\"}\n{\"type\":\"mystery\"}\n", "line 2"},
		{"missing type", "{\"buffer\":\"x\"}\n", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ScanRecords(strings.NewReader(tc.input), nil, nil)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
	// Blank lines are tolerated; callback errors propagate with the line.
	cbErr := errors.New("boom")
	_, err := ScanRecords(strings.NewReader("\n{\"type\":\"span\",\"kind\":\"x\"}\n"),
		nil, func(SpanRecord) error { return cbErr })
	if err == nil || !errors.Is(err, cbErr) || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("callback error = %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestSinkWriteFailureNonFatal(t *testing.T) {
	sink := NewSink(failWriter{})
	sink.WriteSample(SampleRecord{Buffer: "t.a"})
	st := sink.Stats()
	if st.Lines != 0 || st.Errors != 1 {
		t.Errorf("stats after failure = %+v", st)
	}
	if err := sink.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Err() = %v", err)
	}
}
