// Package timeline records the *temporal* dimension of the Index
// Buffer's adaptation: per-(table, column) ring-buffered time-series of
// coverage fraction, C[p] counter distribution, occupancy bytes,
// displacement/page-complete churn, and the per-mechanism query mix,
// sampled on query boundaries and re-sampled after adaptive events. The
// paper's headline claims are convergence curves (Figs. 5–6 plot
// coverage and scan cost over query count); this package makes those
// curves a live observable instead of an offline aibench artifact, and
// derives a convergence verdict ("queries to 95% coverage", regression
// flags) from them.
//
// Concurrency: the Recorder's mutex is a strict leaf — no method
// acquires any other lock while holding it, and buffer state is
// snapshotted *before* the mutex is taken. That lets NoteEvent be
// called from the core.Observer bridge (which runs with Space.mu held)
// without ordering constraints: NoteEvent only bumps counters and marks
// the buffer dirty; the actual coverage sample of a dirtied buffer is
// taken later, on the next query boundary, outside all core locks.
//
// Disabled (the default), every entry point is a single atomic load
// with no allocation, so the recorder can stay attached to a production
// engine at ~zero cost — the same contract the trace package's span
// gate established.
package timeline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Mechanism classifies how a query was answered; the values mirror the
// trace package's mechanism strings.
type Mechanism int

const (
	// MechHit: answered by the partial index alone.
	MechHit Mechanism = iota
	// MechIndexingScan: answered by an Algorithm-1 indexing scan.
	MechIndexingScan
	// MechFullScan: answered by a plain full table scan (no buffer).
	MechFullScan
	// MechFollower: rode along on another query's shared scan.
	MechFollower

	numMechanisms
)

// String returns the trace-compatible mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechHit:
		return "hit"
	case MechIndexingScan:
		return "indexing-scan"
	case MechFullScan:
		return "full-scan"
	case MechFollower:
		return "shared-follower"
	}
	return "unknown"
}

// Sample event triggers.
const (
	// EventQuery: taken on a query boundary for the queried column.
	EventQuery = "query"
	// EventResample: taken after an adaptive event (displacement,
	// page-complete) changed a buffer another query was not touching.
	EventResample = "resample"
)

// Sample is one timeline data point. Counter distribution fields
// describe the *non-zero* counters (the remaining un-skippable work);
// zeros are what Coverage already measures. Churn and mix fields are
// cumulative — consumers difference adjacent samples for rates.
type Sample struct {
	// Query is the series' 1-based query ordinal at sampling time;
	// EventResample samples repeat the current ordinal.
	Query uint64 `json:"query"`
	// Event is EventQuery or EventResample.
	Event string `json:"event"`
	// UnixMicros is the wall-clock sampling instant.
	UnixMicros int64 `json:"unix_us"`

	// TotalPages is the buffer's counter-array size; Skippable the pages
	// with C[p] == 0; Coverage their ratio (0 when TotalPages is 0).
	TotalPages int     `json:"total_pages"`
	Skippable  int     `json:"skippable_pages"`
	Coverage   float64 `json:"coverage"`

	// Entries and Bytes are the buffer's occupancy: entry count and the
	// exact encoded payload bytes of those entries.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`

	// CMin/CP50/CP95/CMax summarize the non-zero C[p] distribution; all
	// zero when every page is skippable.
	CMin int `json:"c_min"`
	CP50 int `json:"c_p50"`
	CP95 int `json:"c_p95"`
	CMax int `json:"c_max"`

	// Cumulative churn counters for this buffer.
	Displacements    uint64 `json:"displacements"`
	DisplacedEntries uint64 `json:"displaced_entries"`
	PageCompletes    uint64 `json:"page_completes"`

	// Cumulative per-mechanism query mix for this (table, column).
	Hits          uint64 `json:"hits"`
	IndexingScans uint64 `json:"indexing_scans"`
	FullScans     uint64 `json:"full_scans"`
	Followers     uint64 `json:"followers"`
}

// Series is the retained timeline of one (table, column) pair. The
// JSON tags shape the obs package's /timeline endpoint.
type Series struct {
	// Buffer is the Index Buffer name, "table.column".
	Buffer string `json:"buffer"`
	// Table and Column are filled on the first query observation; a
	// series created by an adaptive event alone has them empty until a
	// query touches the column.
	Table  string `json:"table,omitempty"`
	Column string `json:"column,omitempty"`
	// Samples are oldest-first. Dropped counts samples evicted from the
	// ring before this snapshot.
	Samples []Sample `json:"samples"`
	Dropped uint64   `json:"dropped"`
}

// Convergence is the detector's verdict for one series — the
// paper-shaped answer to "how many queries until this column became
// target-fraction skippable, and has it stayed there?".
type Convergence struct {
	Buffer string `json:"buffer"`
	Table  string `json:"table,omitempty"`
	Column string `json:"column,omitempty"`
	// Target is the coverage fraction the detector watches for.
	Target float64 `json:"target"`
	// Achieved reports whether coverage ever reached Target;
	// QueriesToTarget is the query ordinal of the first crossing.
	Achieved        bool   `json:"achieved"`
	QueriesToTarget uint64 `json:"queries_to_target,omitempty"`
	// Coverage is the latest observed value, MaxCoverage the high-water
	// mark.
	Coverage    float64 `json:"coverage"`
	MaxCoverage float64 `json:"max_coverage"`
	// Regressed reports that coverage currently sits below Target after
	// having achieved it (e.g. a DML burst or displacement undid
	// buffered pages); RegressedAt is the query ordinal of the latest
	// drop below Target.
	Regressed   bool   `json:"regressed"`
	RegressedAt uint64 `json:"regressed_at,omitempty"`
	// Resets counts buffer-reset events (partial index dropped or
	// redefined): each one discards the buffer wholesale and starts a
	// fresh adaptation episode, so Achieved/QueriesToTarget/MaxCoverage
	// describe the *current* episode only. Without this reset a
	// shifting workload that redefines its index would keep reporting
	// the stale pre-shift "converged" verdict forever.
	Resets uint64 `json:"resets,omitempty"`
	// Queries is the series' total query count.
	Queries uint64 `json:"queries"`
}

// series is the mutable per-buffer state behind one Series.
type series struct {
	buffer        string
	table, column string

	ring    []Sample
	next    int
	filled  int
	dropped uint64

	queries uint64
	mech    [numMechanisms]uint64

	displacements    uint64
	displacedEntries uint64
	pageCompletes    uint64

	// convergence state, updated incrementally at every append so the
	// verdict survives ring eviction. A buffer-reset event clears the
	// episode fields (achieved through regressedAt) — the buffer was
	// recreated from scratch, so the old verdict no longer describes it.
	achieved        bool
	queriesToTarget uint64
	coverage        float64
	maxCoverage     float64
	regressed       bool
	regressedAt     uint64
	resets          uint64
}

// snapshot is a buffer-state reading taken outside the recorder lock.
type snapshot struct {
	counters core.CounterStats
	entries  int
	bytes    int
}

// Defaults.
const (
	// DefaultCapacity bounds each series' sample ring.
	DefaultCapacity = 1024
	// DefaultTarget is the convergence coverage fraction (the paper's
	// curves flatten just below full coverage of the touched range).
	DefaultTarget = 0.95
)

// Recorder is the adaptation-timeline subsystem: one ring-buffered
// series per Index Buffer plus the convergence detector over them.
// Safe for concurrent use; zero-cost while disabled.
type Recorder struct {
	enabled  atomic.Bool
	capacity int
	target   float64
	samples  atomic.Uint64 // total samples ever taken, across series

	sink atomic.Pointer[Sink]

	mu     sync.Mutex
	series map[string]*series
	dirty  map[string]struct{}
}

// New creates a recorder keeping capacity samples per series (<= 0
// means DefaultCapacity) and detecting convergence at target coverage
// (<= 0 or > 1 means DefaultTarget).
func New(capacity int, target float64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if target <= 0 || target > 1 {
		target = DefaultTarget
	}
	return &Recorder{
		capacity: capacity,
		target:   target,
		series:   make(map[string]*series),
		dirty:    make(map[string]struct{}),
	}
}

// Enable turns sampling on or off. Off (the default) makes every entry
// point a single atomic load.
func (r *Recorder) Enable(on bool) { r.enabled.Store(on) }

// Enabled reports whether sampling is on. Callers that must build
// arguments (resolve buffers, snapshot stats) should check it first to
// keep the disabled path allocation-free.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// Target returns the convergence coverage target.
func (r *Recorder) Target() float64 { return r.target }

// SampleCount returns the number of samples ever taken (survives ring
// eviction and Reset).
func (r *Recorder) SampleCount() uint64 { return r.samples.Load() }

// SetSink attaches a telemetry sink: every sample appended from now on
// is also streamed to it as one JSONL record. nil detaches.
func (r *Recorder) SetSink(s *Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(s)
}

// ObserveQuery records a query boundary for (table, column): the
// mechanism mix always advances, and when buf is non-nil its coverage,
// counter distribution and occupancy are sampled. It then re-samples
// any buffers dirtied by adaptive events since the last boundary, using
// resolve to map buffer names to buffers (resolve may be nil to skip).
// No recorder lock is held while buffer state is read.
func (r *Recorder) ObserveQuery(table, column string, mech Mechanism, buf *core.IndexBuffer, resolve func(string) *core.IndexBuffer) {
	if !r.enabled.Load() {
		return
	}
	key := bufferKey(table, column)
	snap := takeSnapshot(buf)
	now := time.Now().UnixMicro()

	r.mu.Lock()
	s := r.seriesLocked(key)
	if s.table == "" {
		s.table, s.column = table, column
	}
	s.queries++
	if mech >= 0 && mech < numMechanisms {
		s.mech[mech]++
	}
	delete(r.dirty, key) // this boundary samples the queried buffer itself
	sample := r.appendLocked(s, EventQuery, now, snap)
	rec := SampleRecord{Type: RecordSample, Buffer: s.buffer, Table: s.table, Column: s.column, Sample: sample}
	dirty := r.takeDirtyLocked()
	r.mu.Unlock()

	if sink := r.sink.Load(); sink != nil {
		sink.WriteSample(rec)
	}
	if resolve != nil {
		for _, name := range dirty {
			r.Resample(name, resolve(name))
		}
	}
}

// Resample takes an EventResample sample of one buffer — used after
// adaptive events dirtied a buffer no query boundary would otherwise
// visit (e.g. a displacement victim on another table). A nil buf is
// ignored (the buffer was dropped between dirtying and resampling).
func (r *Recorder) Resample(name string, buf *core.IndexBuffer) {
	if buf == nil || !r.enabled.Load() {
		return
	}
	snap := takeSnapshot(buf)
	now := time.Now().UnixMicro()

	r.mu.Lock()
	s := r.seriesLocked(name)
	sample := r.appendLocked(s, EventResample, now, snap)
	rec := SampleRecord{Type: RecordSample, Buffer: s.buffer, Table: s.table, Column: s.column, Sample: sample}
	r.mu.Unlock()

	if sink := r.sink.Load(); sink != nil {
		sink.WriteSample(rec)
	}
}

// NoteEvent ingests one adaptive event (the trace span vocabulary:
// kind/target/page/n). It only touches recorder-internal state — bumps
// churn counters, resets the convergence episode on "buffer-reset",
// marks the target buffer dirty for the next query boundary — so it is
// safe to call with any core lock held, including from the
// core.Observer bridge (Space.mu held).
func (r *Recorder) NoteEvent(kind, target string, page, n int) {
	if !r.enabled.Load() {
		return
	}
	_ = page
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(target)
	switch kind {
	case "displace":
		s.displacements++
		s.displacedEntries += uint64(n)
		r.dirty[target] = struct{}{}
	case "page-complete":
		s.pageCompletes++
		r.dirty[target] = struct{}{}
	case "buffer-reset":
		// The buffer was dropped wholesale (partial index dropped or
		// redefined); any successor under the same name is a new
		// adaptation episode. Clearing the episode state here fixes the
		// detector's stale-converged false positive under shifting
		// workloads: the verdict would otherwise report the pre-shift
		// convergence (merely "regressed") for a buffer that no longer
		// exists.
		s.resets++
		s.achieved = false
		s.queriesToTarget = 0
		s.maxCoverage = 0
		s.regressed = false
		s.regressedAt = 0
		r.dirty[target] = struct{}{}
	}
}

// TakeDirty returns and clears the set of buffer names dirtied by
// adaptive events since the last call. The caller resolves each name to
// its buffer (outside core's locks) and calls Resample.
func (r *Recorder) TakeDirty() []string {
	if !r.enabled.Load() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.takeDirtyLocked()
}

func (r *Recorder) takeDirtyLocked() []string {
	if len(r.dirty) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.dirty))
	for k := range r.dirty {
		out = append(out, k)
	}
	sort.Strings(out)
	r.dirty = make(map[string]struct{})
	return out
}

// Series returns a snapshot of every series, sorted by buffer name,
// samples oldest-first.
func (r *Recorder) Series() []Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s.export())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Buffer < out[j].Buffer })
	return out
}

// SeriesFor returns the series for one buffer name and whether it
// exists.
func (r *Recorder) SeriesFor(name string) (Series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		return Series{}, false
	}
	return s.export(), true
}

// Convergence returns the detector's verdict for every series, sorted
// by buffer name.
func (r *Recorder) Convergence() []Convergence {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Convergence, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s.verdict(r.target))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Buffer < out[j].Buffer })
	return out
}

// Reset clears all series and dirty marks; the total sample count keeps
// counting, mirroring the tracer's span sequence across Reset.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = make(map[string]*series)
	r.dirty = make(map[string]struct{})
}

// seriesLocked returns (creating on first touch) the series for key.
func (r *Recorder) seriesLocked(key string) *series {
	s := r.series[key]
	if s == nil {
		s = &series{buffer: key, ring: make([]Sample, r.capacity)}
		r.series[key] = s
	}
	return s
}

// appendLocked builds a sample from the snapshot, appends it to the
// series ring, and advances the convergence state. Returns the sample.
func (r *Recorder) appendLocked(s *series, event string, unixMicros int64, snap snapshot) Sample {
	cov := 0.0
	if snap.counters.Pages > 0 {
		cov = float64(snap.counters.Skippable) / float64(snap.counters.Pages)
	}
	sample := Sample{
		Query:            s.queries,
		Event:            event,
		UnixMicros:       unixMicros,
		TotalPages:       snap.counters.Pages,
		Skippable:        snap.counters.Skippable,
		Coverage:         cov,
		Entries:          snap.entries,
		Bytes:            snap.bytes,
		CMin:             snap.counters.Min,
		CP50:             snap.counters.P50,
		CP95:             snap.counters.P95,
		CMax:             snap.counters.Max,
		Displacements:    s.displacements,
		DisplacedEntries: s.displacedEntries,
		PageCompletes:    s.pageCompletes,
		Hits:             s.mech[MechHit],
		IndexingScans:    s.mech[MechIndexingScan],
		FullScans:        s.mech[MechFullScan],
		Followers:        s.mech[MechFollower],
	}
	s.ring[s.next] = sample
	s.next = (s.next + 1) % len(s.ring)
	if s.filled < len(s.ring) {
		s.filled++
	} else {
		s.dropped++
	}
	r.samples.Add(1)

	// Convergence advances only on samples that actually measured a
	// buffer; a nil-buffer query-mix sample (TotalPages == 0 with no
	// buffer) still measures zero coverage honestly, which is correct:
	// no buffer means nothing is skippable.
	s.coverage = cov
	if cov > s.maxCoverage {
		s.maxCoverage = cov
	}
	if !s.achieved && cov >= r.target {
		s.achieved = true
		s.queriesToTarget = s.queries
	}
	if s.achieved {
		if cov < r.target {
			if !s.regressed {
				s.regressed = true
				s.regressedAt = s.queries
			}
		} else {
			s.regressed = false
		}
	}
	return sample
}

// export copies the retained samples oldest-first.
func (s *series) export() Series {
	out := Series{
		Buffer:  s.buffer,
		Table:   s.table,
		Column:  s.column,
		Samples: make([]Sample, 0, s.filled),
		Dropped: s.dropped,
	}
	for i := 0; i < s.filled; i++ {
		out.Samples = append(out.Samples, s.ring[(s.next-s.filled+i+len(s.ring))%len(s.ring)])
	}
	return out
}

func (s *series) verdict(target float64) Convergence {
	return Convergence{
		Buffer:          s.buffer,
		Table:           s.table,
		Column:          s.column,
		Target:          target,
		Achieved:        s.achieved,
		QueriesToTarget: s.queriesToTarget,
		Coverage:        s.coverage,
		MaxCoverage:     s.maxCoverage,
		Regressed:       s.regressed,
		RegressedAt:     s.regressedAt,
		Resets:          s.resets,
		Queries:         s.queries,
	}
}

// takeSnapshot reads buffer state through its own accessors — never
// with the recorder lock held.
func takeSnapshot(buf *core.IndexBuffer) snapshot {
	if buf == nil {
		return snapshot{}
	}
	return snapshot{
		counters: buf.CounterSummary(),
		entries:  buf.EntryCount(),
		bytes:    buf.EntryBytes(),
	}
}

// bufferKey mirrors the engine's buffer naming ("table.column").
func bufferKey(table, column string) string { return table + "." + column }
