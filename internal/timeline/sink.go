package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/flight"
)

// Record type tags, first field of every exported line.
const (
	// RecordSample tags a timeline sample line.
	RecordSample = "sample"
	// RecordSpan tags a trace span line.
	RecordSpan = "span"
	// RecordFlight tags a completed per-statement flight record.
	RecordFlight = "flight"
)

// SampleRecord is one exported timeline sample: the record envelope
// (type + series identity) around the embedded Sample fields.
type SampleRecord struct {
	Type   string `json:"type"`
	Buffer string `json:"buffer"`
	Table  string `json:"table,omitempty"`
	Column string `json:"column,omitempty"`
	Sample
}

// SpanRecord is one exported trace span (the trace package's Span
// fields; duplicated here so decoding telemetry needs only this
// package).
type SpanRecord struct {
	Type   string `json:"type"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Target string `json:"target"`
	Page   int    `json:"page"`
	N      int    `json:"n"`
	// Trace is the emitting statement's trace ID, when the span was
	// recorded under one ("" otherwise).
	Trace string `json:"trace,omitempty"`
}

// FlightRecord is one exported per-statement flight record: the record
// envelope around the flight package's Record fields.
type FlightRecord struct {
	Type string `json:"type"`
	flight.Record
}

// SinkStats is a point-in-time reading of a sink's counters.
type SinkStats struct {
	Lines  uint64 // records successfully written
	Errors uint64 // write or marshal failures (records dropped)
}

// Sink streams telemetry records to an io.Writer as JSONL — one JSON
// object per line, append-only, so a crash mid-run loses at most the
// last line and aibench can replay Fig. 5/6-style curves from the file.
// Writes are serialized by an internal mutex; a failed write drops that
// record and bumps Errors rather than blocking or panicking, keeping
// the telemetry path non-fatal to the engine.
type Sink struct {
	mu      sync.Mutex
	w       io.Writer
	lines   atomic.Uint64
	errors  atomic.Uint64
	lastErr atomic.Pointer[error]
}

// NewSink wraps w. The caller owns w's lifecycle (flush/close).
func NewSink(w io.Writer) *Sink {
	return &Sink{w: w}
}

// WriteSample exports one sample record.
func (s *Sink) WriteSample(rec SampleRecord) {
	rec.Type = RecordSample
	s.writeJSON(rec)
}

// WriteSpan exports one span record.
func (s *Sink) WriteSpan(rec SpanRecord) {
	rec.Type = RecordSpan
	s.writeJSON(rec)
}

// WriteFlight exports one completed flight record.
func (s *Sink) WriteFlight(rec flight.Record) {
	s.writeJSON(FlightRecord{Type: RecordFlight, Record: rec})
}

func (s *Sink) writeJSON(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.fail(err)
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	_, err = s.w.Write(b)
	s.mu.Unlock()
	if err != nil {
		s.fail(err)
		return
	}
	s.lines.Add(1)
}

func (s *Sink) fail(err error) {
	s.errors.Add(1)
	s.lastErr.Store(&err)
}

// Stats reads the sink's counters.
func (s *Sink) Stats() SinkStats {
	return SinkStats{Lines: s.lines.Load(), Errors: s.errors.Load()}
}

// Err returns the most recent write/marshal failure, nil if none.
func (s *Sink) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// ScanRecords decodes a JSONL telemetry stream, dispatching each record
// to the matching callback (either may be nil to skip that type). It
// returns the number of records decoded; a malformed line, an unknown
// record type, or a callback error stops the scan with an error naming
// the line. This is the decode half of the sink — aibench's
// -verify-telemetry mode and the replay tests are built on it. Flight
// records in the stream are counted but skipped; use ScanAllRecords to
// receive them.
func ScanRecords(r io.Reader, onSample func(SampleRecord) error, onSpan func(SpanRecord) error) (int, error) {
	return ScanAllRecords(r, onSample, onSpan, nil)
}

// ScanAllRecords is ScanRecords extended with the flight-record
// callback (any callback may be nil to skip its type).
func ScanAllRecords(r io.Reader, onSample func(SampleRecord) error, onSpan func(SpanRecord) error, onFlight func(FlightRecord) error) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n, line := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return n, fmt.Errorf("timeline: line %d: %w", line, err)
		}
		switch probe.Type {
		case RecordSample:
			var rec SampleRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return n, fmt.Errorf("timeline: line %d: %w", line, err)
			}
			if onSample != nil {
				if err := onSample(rec); err != nil {
					return n, fmt.Errorf("timeline: line %d: %w", line, err)
				}
			}
		case RecordSpan:
			var rec SpanRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return n, fmt.Errorf("timeline: line %d: %w", line, err)
			}
			if onSpan != nil {
				if err := onSpan(rec); err != nil {
					return n, fmt.Errorf("timeline: line %d: %w", line, err)
				}
			}
		case RecordFlight:
			var rec FlightRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return n, fmt.Errorf("timeline: line %d: %w", line, err)
			}
			if onFlight != nil {
				if err := onFlight(rec); err != nil {
					return n, fmt.Errorf("timeline: line %d: %w", line, err)
				}
			}
		default:
			return n, fmt.Errorf("timeline: line %d: unknown record type %q", line, probe.Type)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("timeline: %w", err)
	}
	return n, nil
}
