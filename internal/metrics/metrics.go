// Package metrics provides the small recording and rendering toolkit the
// experiment harness uses: named series of per-query measurements,
// tabular output (TSV and aligned text), and ASCII line plots so the CLI
// can show the paper's figure shapes directly in a terminal.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve: a sequence of float measurements, typically
// one per query.
type Series struct {
	Name string
	Y    []float64
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a measurement.
func (s *Series) Add(v float64) { s.Y = append(s.Y, v) }

// Len returns the number of measurements.
func (s *Series) Len() int { return len(s.Y) }

// Min returns the smallest value (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// MeanRange returns the mean of Y[from:to] (clamped; 0 when empty) — used
// to summarize phases of an experiment, e.g. "queries 100–200".
func (s *Series) MeanRange(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Y) {
		to = len(s.Y)
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// Frame is a set of series sharing an x-axis (x = index, e.g. query
// number), renderable as a table or plot.
type Frame struct {
	XLabel string
	Series []*Series
}

// NewFrame creates a frame over the given series.
func NewFrame(xLabel string, series ...*Series) *Frame {
	return &Frame{XLabel: xLabel, Series: series}
}

// rows returns the longest series length.
func (f *Frame) rows() int {
	n := 0
	for _, s := range f.Series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	return n
}

// WriteTSV writes a header line and one tab-separated row per x value.
// Missing values (shorter series) are empty cells.
func (f *Frame) WriteTSV(w io.Writer) error {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for i := 0; i < f.rows(); i++ {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%d", i))
		for _, s := range f.Series {
			if i < s.Len() {
				row = append(row, formatNum(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable writes an aligned text table sampling every step-th row
// (step < 1 means every row).
func (f *Frame) WriteTable(w io.Writer, step int) error {
	if step < 1 {
		step = 1
	}
	widths := make([]int, len(f.Series)+1)
	widths[0] = len(f.XLabel)
	if widths[0] < 6 {
		widths[0] = 6
	}
	for i, s := range f.Series {
		widths[i+1] = len(s.Name)
		if widths[i+1] < 10 {
			widths[i+1] = 10
		}
	}
	header := make([]string, len(widths))
	header[0] = pad(f.XLabel, widths[0])
	for i, s := range f.Series {
		header[i+1] = pad(s.Name, widths[i+1])
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "  ")); err != nil {
		return err
	}
	n := f.rows()
	for i := 0; i < n; i += step {
		row := make([]string, len(widths))
		row[0] = pad(fmt.Sprintf("%d", i), widths[0])
		for j, s := range f.Series {
			cell := ""
			if i < s.Len() {
				cell = formatNum(s.Y[i])
			}
			row[j+1] = pad(cell, widths[j+1])
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "  ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// formatNum renders a float compactly: integers without decimals, others
// with up to 3 significant decimals.
func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// plotGlyphs assigns one glyph per series in order.
var plotGlyphs = []rune{'*', '+', 'o', 'x', '#', '@'}

// ASCIIPlot renders the frame as a width×height character plot with a
// y-axis scale and per-series glyph legend. Series are downsampled to the
// plot width by bucket means.
func (f *Frame) ASCIIPlot(width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		if s.Len() == 0 {
			continue
		}
		if m := s.Min(); m < lo {
			lo = m
		}
		if m := s.Max(); m > hi {
			hi = m
		}
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	n := f.rows()
	for si, s := range f.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for col := 0; col < width; col++ {
			from := col * n / width
			to := (col + 1) * n / width
			if to > s.Len() {
				to = s.Len()
			}
			if from >= to {
				continue
			}
			sum := 0.0
			for i := from; i < to; i++ {
				sum += s.Y[i]
			}
			v := sum / float64(to-from)
			row := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", formatNum(hi))
	for _, row := range grid {
		b.WriteString("| ")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s %s -> %s\n", formatNum(lo), f.XLabel, "")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String()
}
