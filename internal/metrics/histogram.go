package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Histogram accumulates observations and reports order statistics
// (p50/p95/p99). The bench harness uses it to summarize per-query
// wall-clock latencies, and the tracer keeps one per query mechanism.
//
// Concurrency guarantee: a Histogram is safe for concurrent use —
// Observe, Count, Sum, Mean, Quantile, Summary and Stats may all be
// called from different goroutines without external locking, and no
// reader mutates the observation slice another reader is sorting (the
// historical data race: Quantile sorted the live slice in place).
// Quantiles are served from a sorted copy that is cached until the next
// Observe invalidates it.
//
// An unbounded Histogram (NewHistogram) retains every observation and
// reports exact order statistics. A bounded one
// (NewReservoirHistogram) keeps a fixed-size uniform reservoir sample
// (Vitter's Algorithm R), so memory stays constant under production
// query volumes; Count, Sum, Mean and Max remain exact, quantiles
// become estimates over the sample.
type Histogram struct {
	mu     sync.Mutex
	values []float64  // retained observations (all of them, or the reservoir)
	sorted []float64  // cached sorted copy of values; nil when stale
	count  uint64     // observations ever made (>= len(values) when bounded)
	sum    float64    // exact running sum
	max    float64    // exact running max
	limit  int        // reservoir capacity; 0 = retain everything
	rng    *rand.Rand // reservoir replacement randomness (limit > 0 only)
}

// NewHistogram creates an empty, unbounded histogram: every observation
// is retained and quantiles are exact.
func NewHistogram() *Histogram { return &Histogram{} }

// NewReservoirHistogram creates a histogram bounded to limit retained
// observations via uniform reservoir sampling; limit <= 0 means
// unbounded. The seed makes the sampling deterministic for tests.
func NewReservoirHistogram(limit int, seed int64) *Histogram {
	if limit <= 0 {
		return NewHistogram()
	}
	return &Histogram{limit: limit, rng: rand.New(rand.NewSource(seed))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if h.limit == 0 || len(h.values) < h.limit {
		h.values = append(h.values, v)
	} else if j := h.rng.Int63n(int64(h.count)); j < int64(h.limit) {
		h.values[j] = v // Algorithm R: keep each observation with prob limit/count
	} else {
		return // reservoir unchanged; sorted cache stays valid
	}
	h.sorted = nil
}

// Count returns the number of observations made (not the number
// retained, which a bounded histogram caps).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the total of all observations (exact even when bounded).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean (0 when empty; exact even when
// bounded).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

func (h *Histogram) meanLocked() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on
// the sorted retained observations; 0 when empty. q >= 1 reports the
// exact maximum even when the reservoir has since evicted it.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if h.sorted == nil {
		h.sorted = append(make([]float64, 0, len(h.values)), h.values...)
		sort.Float64s(h.sorted)
	}
	if q <= 0 {
		return h.sorted[0]
	}
	rank := int(math.Ceil(q*float64(len(h.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.sorted[rank]
}

// HistogramStats is a consistent point-in-time snapshot of a
// histogram's summary statistics, taken under one lock acquisition.
type HistogramStats struct {
	Count          int
	Sum, Mean, Max float64
	P50, P95, P99  float64
}

// Stats snapshots count/sum/mean/max and the p50/p95/p99 quantiles
// atomically with respect to concurrent Observe calls.
func (h *Histogram) Stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramStats{
		Count: int(h.count),
		Sum:   h.sum,
		Mean:  h.meanLocked(),
		Max:   h.max,
		P50:   h.quantileLocked(0.5),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
}

// Summary renders count/mean/p50/p95/p99/max in one line with the given
// unit suffix.
func (h *Histogram) Summary(unit string) string {
	s := h.Stats()
	if s.Count == 0 {
		return "(no observations)"
	}
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s",
		s.Count, s.Mean, unit, s.P50, unit, s.P95, unit, s.P99, unit, s.Max, unit)
}
