package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates observations and reports order statistics. The
// bench harness uses it to summarize per-query wall-clock latencies
// (p50/p95/p99) alongside the logical-I/O series.
type Histogram struct {
	values []float64
	sorted bool
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.values = append(h.values, v)
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.values) }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.values {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.values) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.values))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted observations; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.values)
		h.sorted = true
	}
	if q <= 0 {
		return h.values[0]
	}
	if q >= 1 {
		return h.values[len(h.values)-1]
	}
	rank := int(math.Ceil(q*float64(len(h.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.values[rank]
}

// Summary renders count/mean/p50/p95/p99/max in one line with the given
// unit suffix.
func (h *Histogram) Summary(unit string) string {
	if len(h.values) == 0 {
		return "(no observations)"
	}
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s",
		h.Count(), h.Mean(), unit,
		h.Quantile(0.5), unit, h.Quantile(0.95), unit, h.Quantile(0.99), unit,
		h.Quantile(1), unit)
}
