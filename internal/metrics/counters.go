package metrics

import "sync/atomic"

// SharedScanCounters counts the engine's scan-sharing activity. All
// fields are atomics so queries on every table bump them without
// additional locking; Snapshot gives a consistent-enough read for tests
// and monitoring (each field is read atomically, the set is not).
type SharedScanCounters struct {
	// Misses counts queries that needed an indexing scan (partial-index
	// misses on a buffered column) and entered the admission layer.
	Misses atomic.Uint64
	// Scans counts Algorithm-1 passes actually executed.
	Scans atomic.Uint64
	// Attached counts queries that joined another query's batch instead
	// of leading their own scan.
	Attached atomic.Uint64
}

// ParallelScanCounters counts parallel heap-scan execution: how many
// table-scan stages fanned out to more than one worker, and the total
// workers used across them. Atomic for the same reason as
// SharedScanCounters; the mean fan-out is Workers/Scans.
type ParallelScanCounters struct {
	// Scans counts table-scan stages executed with more than one worker.
	Scans atomic.Uint64
	// Workers sums the worker counts of those scans.
	Workers atomic.Uint64
}

// ParallelScanStats is a point-in-time reading of ParallelScanCounters.
type ParallelScanStats struct {
	Scans   uint64 // scans that fanned out (>1 worker)
	Workers uint64 // total workers across those scans
}

// Snapshot reads the counters.
func (c *ParallelScanCounters) Snapshot() ParallelScanStats {
	return ParallelScanStats{Scans: c.Scans.Load(), Workers: c.Workers.Load()}
}

// ScrapeCounters counts /metrics scrape outcomes for the obs HTTP
// layer. A scrape that fails after the response headers are out cannot
// signal the client with a status code, so the failure is recorded
// here and surfaced on the *next* successful scrape as
// aib_scrape_errors_total.
type ScrapeCounters struct {
	// Scrapes counts scrape attempts against a live engine.
	Scrapes atomic.Uint64
	// Errors counts scrapes whose response write failed mid-stream.
	Errors atomic.Uint64
}

// ScrapeStats is a point-in-time reading of ScrapeCounters.
type ScrapeStats struct {
	Scrapes uint64 // scrape attempts
	Errors  uint64 // mid-stream write failures
}

// Snapshot reads the counters.
func (c *ScrapeCounters) Snapshot() ScrapeStats {
	return ScrapeStats{Scrapes: c.Scrapes.Load(), Errors: c.Errors.Load()}
}

// SharedScanStats is a point-in-time reading of SharedScanCounters.
type SharedScanStats struct {
	Misses   uint64 // miss queries admitted
	Scans    uint64 // Algorithm-1 passes executed
	Attached uint64 // queries that rode along on another's scan
	Saved    uint64 // scans avoided by sharing: Misses - Scans
}

// Snapshot reads the counters. Saved clamps at zero: between the Misses
// and Scans loads another query may slip in, so the difference could
// transiently read negative.
func (c *SharedScanCounters) Snapshot() SharedScanStats {
	s := SharedScanStats{
		Misses:   c.Misses.Load(),
		Scans:    c.Scans.Load(),
		Attached: c.Attached.Load(),
	}
	if s.Misses > s.Scans {
		s.Saved = s.Misses - s.Scans
	}
	return s
}
