package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSeriesStats(t *testing.T) {
	s := NewSeries("cost")
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty series stats should be 0")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.Len() != 5 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 2.8 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestMeanRange(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	if got := s.MeanRange(0, 5); got != 2 {
		t.Errorf("MeanRange(0,5) = %v", got)
	}
	if got := s.MeanRange(5, 10); got != 7 {
		t.Errorf("MeanRange(5,10) = %v", got)
	}
	// Clamping and degenerate ranges.
	if got := s.MeanRange(-5, 100); got != 4.5 {
		t.Errorf("clamped = %v", got)
	}
	if got := s.MeanRange(7, 3); got != 0 {
		t.Errorf("inverted = %v", got)
	}
}

func TestWriteTSV(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	a.Add(1)
	a.Add(2)
	b.Add(10) // shorter series leaves an empty cell
	f := NewFrame("query", a, b)
	var buf bytes.Buffer
	if err := f.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "query\ta\tb" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0\t1\t10" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if lines[2] != "1\t2\t" {
		t.Errorf("row 1 = %q", lines[2])
	}
}

func TestWriteTableSampling(t *testing.T) {
	s := NewSeries("v")
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	f := NewFrame("q", s)
	var buf bytes.Buffer
	if err := f.WriteTable(&buf, 25); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + rows 0, 25, 50, 75.
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "v") || !strings.Contains(lines[0], "q") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "25") {
		t.Errorf("sampled row = %q", lines[2])
	}
}

func TestASCIIPlot(t *testing.T) {
	s := NewSeries("rising")
	for i := 0; i < 50; i++ {
		s.Add(float64(i))
	}
	f := NewFrame("q", s)
	out := f.ASCIIPlot(40, 8)
	if !strings.Contains(out, "rising") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs")
	}
	lines := strings.Split(out, "\n")
	// A rising series puts glyphs in the top line's right side and the
	// bottom data line's left side.
	top := lines[1]
	if !strings.Contains(top, "*") || strings.Index(top, "*") < 20 {
		t.Errorf("top line = %q", top)
	}
	// Empty frame.
	empty := NewFrame("q", NewSeries("none"))
	if got := empty.ASCIIPlot(20, 5); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
	// Flat series (hi == lo) must not divide by zero.
	flat := NewSeries("flat")
	flat.Add(2)
	flat.Add(2)
	_ = NewFrame("q", flat).ASCIIPlot(20, 5)
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(5); got != "5" {
		t.Errorf("formatNum(5) = %q", got)
	}
	if got := formatNum(3.14159); got != "3.142" {
		t.Errorf("formatNum(pi) = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram stats should be 0")
	}
	if h.Summary("ms") != "(no observations)" {
		t.Errorf("empty summary = %q", h.Summary("ms"))
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean = %v", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.95); got != 95 {
		t.Errorf("p95 = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	// Observations after a quantile query still work (re-sort).
	h.Observe(1000)
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 after new obs = %v", got)
	}
	if !strings.Contains(h.Summary("us"), "p95=") {
		t.Errorf("summary = %q", h.Summary("us"))
	}
}

// TestHistogramConcurrent hammers observations and quantile reads from
// parallel goroutines; under -race this is the regression test for the
// historical in-place sort race between Quantile/Summary and Observe.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(g*500 + i))
				_ = h.Quantile(0.95)
				_ = h.Summary("us")
				_ = h.Stats()
				_ = h.Mean()
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d, want 4000", h.Count())
	}
	if got := h.Quantile(1); got != 3999 {
		t.Errorf("max = %v, want 3999", got)
	}
}

func TestReservoirHistogramBounds(t *testing.T) {
	h := NewReservoirHistogram(64, 1)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10000 {
		t.Errorf("count = %d, want 10000 (total observed, not retained)", h.Count())
	}
	h.mu.Lock()
	retained := len(h.values)
	h.mu.Unlock()
	if retained != 64 {
		t.Errorf("retained %d values, want reservoir size 64", retained)
	}
	// Exact statistics survive sampling.
	if h.Sum() != 50005000 {
		t.Errorf("sum = %v", h.Sum())
	}
	if got := h.Mean(); got != 5000.5 {
		t.Errorf("mean = %v", got)
	}
	if got := h.Quantile(1); got != 10000 {
		t.Errorf("max = %v, want exact 10000", got)
	}
	// The sampled median is an estimate; for a uniform stream of 10k
	// observations and a 64-slot reservoir it lands well inside the bulk.
	if p50 := h.Quantile(0.5); p50 < 1500 || p50 > 8500 {
		t.Errorf("sampled p50 = %v, implausibly far from 5000", p50)
	}
	// limit <= 0 degrades to unbounded.
	u := NewReservoirHistogram(0, 1)
	for i := 0; i < 100; i++ {
		u.Observe(float64(i))
	}
	u.mu.Lock()
	n := len(u.values)
	u.mu.Unlock()
	if n != 100 {
		t.Errorf("unbounded fallback retained %d, want 100", n)
	}
}

func TestHistogramStatsSnapshot(t *testing.T) {
	h := NewHistogram()
	if s := h.Stats(); s != (HistogramStats{}) {
		t.Errorf("empty stats = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Stats()
	if s.Count != 100 || s.Sum != 5050 || s.Mean != 50.5 || s.Max != 100 {
		t.Errorf("stats = %+v", s)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("quantiles = %+v", s)
	}
}

func TestSharedScanSnapshot(t *testing.T) {
	var c SharedScanCounters
	if s := c.Snapshot(); s != (SharedScanStats{}) {
		t.Errorf("zero counters snapshot = %+v", s)
	}
	c.Misses.Add(8)
	c.Scans.Add(3)
	c.Attached.Add(5)
	s := c.Snapshot()
	if s.Misses != 8 || s.Scans != 3 || s.Attached != 5 || s.Saved != 5 {
		t.Errorf("snapshot = %+v", s)
	}
	// Saved clamps instead of underflowing when Scans transiently leads.
	c.Scans.Add(10)
	if s := c.Snapshot(); s.Saved != 0 {
		t.Errorf("Saved = %d, want 0", s.Saved)
	}
}
