// Package catalog serializes an engine's metadata — tables, schemas,
// page counts, and partial index definitions — to JSON, so a file-backed
// database can be closed and reopened. Only *definitions* are persisted:
// partial indexes are rebuilt by a scan at load time, and Index Buffers
// are deliberately not persisted at all — they are volatile scratch-pad
// structures "without need for recovery" (paper §III), recreated empty
// with fresh counters.
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/storage"
)

// FileName is the catalog's name inside a database directory.
const FileName = "catalog.json"

// Catalog is the persisted database metadata.
type Catalog struct {
	FormatVersion int         `json:"format_version"`
	Tables        []TableMeta `json:"tables"`

	// CheckpointLSN is the WAL position this catalog is consistent with:
	// every logged change at or below it has reached the page files, so
	// recovery redoes only records above it. Zero means "no WAL" (a
	// snapshot-only save) and replays the whole log if one exists.
	CheckpointLSN uint64 `json:"checkpoint_lsn,omitempty"`
}

// TableMeta describes one table.
type TableMeta struct {
	Name     string       `json:"name"`
	Columns  []ColumnMeta `json:"columns"`
	NumPages int          `json:"num_pages"`
	Indexes  []IndexMeta  `json:"indexes"`
}

// ColumnMeta describes one column.
type ColumnMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "int64" or "string"
}

// IndexMeta describes one partial index definition.
type IndexMeta struct {
	Column   int          `json:"column"`
	Coverage CoverageMeta `json:"coverage"`
}

// CoverageMeta is the serialized form of an index.Coverage.
type CoverageMeta struct {
	Type   string         `json:"type"` // "range", "set", "union", "none", "all"
	Lo     *ValueMeta     `json:"lo,omitempty"`
	Hi     *ValueMeta     `json:"hi,omitempty"`
	Values []ValueMeta    `json:"values,omitempty"`
	Ranges []CoverageMeta `json:"ranges,omitempty"`
}

// ValueMeta is the serialized form of a storage.Value.
type ValueMeta struct {
	Kind string `json:"kind"`
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
}

// EncodeValue converts a storage value to its serialized form.
func EncodeValue(v storage.Value) (ValueMeta, error) {
	switch v.Kind() {
	case storage.KindInt64:
		return ValueMeta{Kind: "int64", Int: v.Int64()}, nil
	case storage.KindString:
		return ValueMeta{Kind: "string", Str: v.Str()}, nil
	default:
		return ValueMeta{}, fmt.Errorf("catalog: cannot encode value of kind %v", v.Kind())
	}
}

// DecodeValue restores a storage value.
func (m ValueMeta) DecodeValue() (storage.Value, error) {
	switch m.Kind {
	case "int64":
		return storage.Int64Value(m.Int), nil
	case "string":
		return storage.StringValue(m.Str), nil
	default:
		return storage.Value{}, fmt.Errorf("catalog: unknown value kind %q", m.Kind)
	}
}

// EncodeKind converts a column kind to its serialized name.
func EncodeKind(k storage.Kind) (string, error) {
	switch k {
	case storage.KindInt64:
		return "int64", nil
	case storage.KindString:
		return "string", nil
	default:
		return "", fmt.Errorf("catalog: cannot encode kind %v", k)
	}
}

// DecodeKind restores a column kind.
func DecodeKind(s string) (storage.Kind, error) {
	switch s {
	case "int64":
		return storage.KindInt64, nil
	case "string":
		return storage.KindString, nil
	default:
		return storage.KindInvalid, fmt.Errorf("catalog: unknown kind %q", s)
	}
}

// EncodeCoverage converts a coverage predicate to its serialized form.
// Unknown implementations (custom predicates) are rejected — persistable
// databases must use the library's coverage types.
func EncodeCoverage(cov index.Coverage) (CoverageMeta, error) {
	switch c := cov.(type) {
	case index.RangeCoverage:
		lo, err := EncodeValue(c.Lo)
		if err != nil {
			return CoverageMeta{}, err
		}
		hi, err := EncodeValue(c.Hi)
		if err != nil {
			return CoverageMeta{}, err
		}
		return CoverageMeta{Type: "range", Lo: &lo, Hi: &hi}, nil
	case index.SetCoverage:
		var vals []ValueMeta
		var encodeErr error
		c.ForEach(func(v storage.Value) {
			if encodeErr != nil {
				return
			}
			vm, err := EncodeValue(v)
			if err != nil {
				encodeErr = err
				return
			}
			vals = append(vals, vm)
		})
		if encodeErr != nil {
			return CoverageMeta{}, encodeErr
		}
		return CoverageMeta{Type: "set", Values: vals}, nil
	case index.UnionCoverage:
		var ranges []CoverageMeta
		for _, r := range c {
			rm, err := EncodeCoverage(r)
			if err != nil {
				return CoverageMeta{}, err
			}
			ranges = append(ranges, rm)
		}
		return CoverageMeta{Type: "union", Ranges: ranges}, nil
	case index.NoneCoverage:
		return CoverageMeta{Type: "none"}, nil
	case index.AllCoverage:
		return CoverageMeta{Type: "all"}, nil
	default:
		return CoverageMeta{}, fmt.Errorf("catalog: cannot persist coverage type %T", cov)
	}
}

// DecodeCoverage restores a coverage predicate.
func (m CoverageMeta) DecodeCoverage() (index.Coverage, error) {
	switch m.Type {
	case "range":
		if m.Lo == nil || m.Hi == nil {
			return nil, fmt.Errorf("catalog: range coverage missing bounds")
		}
		lo, err := m.Lo.DecodeValue()
		if err != nil {
			return nil, err
		}
		hi, err := m.Hi.DecodeValue()
		if err != nil {
			return nil, err
		}
		return index.RangeCoverage{Lo: lo, Hi: hi}, nil
	case "set":
		vals := make([]storage.Value, len(m.Values))
		for i, vm := range m.Values {
			v, err := vm.DecodeValue()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return index.NewSetCoverage(vals...), nil
	case "union":
		var u index.UnionCoverage
		for _, rm := range m.Ranges {
			c, err := rm.DecodeCoverage()
			if err != nil {
				return nil, err
			}
			r, ok := c.(index.RangeCoverage)
			if !ok {
				return nil, fmt.Errorf("catalog: union member is %T, want range", c)
			}
			u = append(u, r)
		}
		return u, nil
	case "none":
		return index.NoneCoverage{}, nil
	case "all":
		return index.AllCoverage{}, nil
	default:
		return nil, fmt.Errorf("catalog: unknown coverage type %q", m.Type)
	}
}

// Save writes the catalog to dir atomically and durably: the temp file
// is fsynced before the rename and the directory is fsynced after, so a
// crash at any point surfaces either the complete old catalog or the
// complete new one — never an empty or torn file. (A rename alone
// reorders freely against the data blocks it points at; without the
// fsyncs a crash right after the rename could surface a zero-length
// catalog.)
func Save(dir string, c Catalog) error {
	c.FormatVersion = 1
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: marshal: %w", err)
	}
	tmp := filepath.Join(dir, FileName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, FileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("catalog: sync dir: %w", err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads the catalog from dir.
func Load(dir string) (Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		return Catalog{}, fmt.Errorf("catalog: read: %w", err)
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return Catalog{}, fmt.Errorf("catalog: parse: %w", err)
	}
	if c.FormatVersion != 1 {
		return Catalog{}, fmt.Errorf("catalog: unsupported format version %d", c.FormatVersion)
	}
	return c, nil
}
