package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
)

func iv(v int64) storage.Value { return storage.Int64Value(v) }

func TestValueRoundTrip(t *testing.T) {
	for _, v := range []storage.Value{iv(42), iv(-1), storage.StringValue("FRA"), storage.StringValue("")} {
		m, err := EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.DecodeValue()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if _, err := EncodeValue(storage.Value{}); err == nil {
		t.Error("invalid value should fail")
	}
	if _, err := (ValueMeta{Kind: "blob"}).DecodeValue(); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []storage.Kind{storage.KindInt64, storage.KindString} {
		s, err := EncodeKind(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeKind(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := EncodeKind(storage.KindInvalid); err == nil {
		t.Error("invalid kind should fail")
	}
	if _, err := DecodeKind("blob"); err == nil {
		t.Error("unknown kind name should fail")
	}
}

func TestCoverageRoundTrip(t *testing.T) {
	covs := []index.Coverage{
		index.IntRange(1, 5000),
		index.RangeCoverage{Lo: storage.StringValue("A"), Hi: storage.StringValue("M")},
		index.NewSetCoverage(iv(1), iv(7), storage.StringValue("ORD")),
		index.UnionCoverage{index.IntRange(1, 10), index.IntRange(50, 60)},
		index.NoneCoverage{},
		index.AllCoverage{},
	}
	probes := []storage.Value{
		iv(0), iv(1), iv(7), iv(55), iv(4999), iv(5001),
		storage.StringValue("ORD"), storage.StringValue("B"), storage.StringValue("Z"),
	}
	for _, cov := range covs {
		m, err := EncodeCoverage(cov)
		if err != nil {
			t.Fatalf("%T: %v", cov, err)
		}
		got, err := m.DecodeCoverage()
		if err != nil {
			t.Fatalf("%T: %v", cov, err)
		}
		for _, p := range probes {
			if got.Covers(p) != cov.Covers(p) {
				t.Errorf("%T: Covers(%v) differs after round trip", cov, p)
			}
		}
	}
	// Custom coverage types cannot be persisted.
	if _, err := EncodeCoverage(customCov{}); err == nil {
		t.Error("custom coverage should fail")
	}
	if _, err := (CoverageMeta{Type: "blob"}).DecodeCoverage(); err == nil {
		t.Error("unknown coverage type should fail")
	}
	if _, err := (CoverageMeta{Type: "range"}).DecodeCoverage(); err == nil {
		t.Error("range without bounds should fail")
	}
}

type customCov struct{}

func (customCov) Covers(storage.Value) bool { return false }
func (customCov) String() string            { return "custom" }

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	rangeCov, _ := EncodeCoverage(index.IntRange(1, 100))
	cat := Catalog{Tables: []TableMeta{{
		Name:     "flights",
		Columns:  []ColumnMeta{{Name: "a", Kind: "int64"}, {Name: "p", Kind: "string"}},
		NumPages: 7,
		Indexes:  []IndexMeta{{Column: 0, Coverage: rangeCov}},
	}}}
	if err := Save(dir, cat); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Name != "flights" || got.Tables[0].NumPages != 7 {
		t.Errorf("loaded = %+v", got)
	}
	if got.FormatVersion != 1 {
		t.Errorf("version = %d", got.FormatVersion)
	}
	// No temp file left behind.
	if _, err := os.Stat(filepath.Join(dir, FileName+".tmp")); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); err == nil {
		t.Error("missing catalog should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt catalog should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(`{"format_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("future format version should fail")
	}
}

func TestCheckpointLSNRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := Catalog{
		Tables:        []TableMeta{{Name: "t", Columns: []ColumnMeta{{Name: "id", Kind: "int64"}}}},
		CheckpointLSN: 1234,
	}
	if err := Save(dir, c); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointLSN != 1234 {
		t.Fatalf("CheckpointLSN = %d, want 1234", got.CheckpointLSN)
	}
}

// TestSaveFailureKeepsOldCatalog injects a write fault (the tmp path is
// occupied by a directory, so the create fails) and asserts the
// previous catalog survives untouched and no tmp file is left behind.
func TestSaveFailureKeepsOldCatalog(t *testing.T) {
	dir := t.TempDir()
	old := Catalog{Tables: []TableMeta{{Name: "old"}}, CheckpointLSN: 7}
	if err := Save(dir, old); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, FileName+".tmp")
	if err := os.Mkdir(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, Catalog{Tables: []TableMeta{{Name: "new"}}}); err == nil {
		t.Fatal("Save over an unwritable tmp path should fail")
	}
	os.Remove(tmp)
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Name != "old" || got.CheckpointLSN != 7 {
		t.Fatalf("old catalog damaged by failed save: %+v", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("tmp file left behind after failed save: %v", err)
	}
}

// TestSaveLeavesNoTmp asserts the durable save path cleans up its
// intermediate file.
func TestSaveLeavesNoTmp(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, Catalog{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("tmp file present after successful save: %v", err)
	}
}
