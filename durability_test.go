package repro

import (
	"context"
	"testing"
	"time"
)

// TestDurabilityRoundTrip exercises the public durability surface: a
// DataDir-backed database is abandoned without Close (a crash — nothing
// flushed), reopened with OpenExisting, and must retain every
// acknowledged write; Rewarm then replays the recovered query tail.
func TestDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{DataDir: dir, Seed: 3})
	tb, err := db.CreateTable("flights", Int64Column("delay"), StringColumn("airport"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialRangeIndex("delay", 0, 30); err != nil {
		t.Fatal(err)
	}
	rids := make([]RID, 0, 60)
	for i := 0; i < 60; i++ {
		rid, err := tb.Insert(int64(i%90), "ORD")
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if _, err := tb.Update(rids[5], int64(77), "SFO"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(rids[6]); err != nil {
		t.Fatal(err)
	}
	// Misses past the covered range log query descriptors; the stats of
	// the log writer show commits were acknowledged durably.
	for i := 0; i < 5; i++ {
		if _, _, err := tb.Query("delay", int64(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Insert(int64(1), "LAX"); err != nil { // flushes the query appends
		t.Fatal(err)
	}
	if ws := db.WALStats(); ws.Commits == 0 || ws.Syncs == 0 {
		t.Fatalf("WALStats shows no durable commits: %+v", ws)
	}

	// Crash: walk away. No Close, no Save.
	db2, err := OpenExisting(Options{DataDir: dir, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rs := db2.RecoveryStats()
	if rs.RedoRecords == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rs)
	}
	tb2 := db2.Table("flights")
	n, err := tb2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 { // 61 inserts minus 1 delete
		t.Fatalf("Count = %d, want 60", n)
	}
	rows, _, err := tb2.Query("delay", int64(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("updated row lost: %d matches for delay=77", len(rows))
	}
	if ap, _ := rows[0].String("airport"); ap != "SFO" {
		t.Fatalf("updated row airport = %q, want SFO", ap)
	}

	db2.EnableTimeline(true)
	if rs.QueryTail == 0 {
		t.Fatalf("no query tail recovered: %+v", rs)
	}
	warmed, err := db2.Rewarm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warmed == 0 {
		t.Fatal("Rewarm replayed nothing")
	}
	var resets uint64
	for _, c := range db2.Convergence() {
		resets += c.Resets
	}
	if resets == 0 {
		t.Fatalf("restart did not register a convergence reset: %+v", db2.Convergence())
	}
	// Explicit checkpoint works and clean close follows.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityDisabled keeps the old snapshot-only contract reachable:
// with the WAL off, Save is the durability boundary.
func TestDurabilityDisabled(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{DataDir: dir, WAL: WALOptions{Disable: true}})
	tb, err := db.CreateTable("t", Int64Column("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a WAL-disabled database should fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenExisting(Options{DataDir: dir, WAL: WALOptions{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.Table("t").Count(); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
}

// TestWALOptionsValidation covers the new validation arms.
func TestWALOptionsValidation(t *testing.T) {
	for _, o := range []Options{
		{WAL: WALOptions{Sync: SyncPolicy(9)}},
		{WAL: WALOptions{SegmentBytes: -1}},
		{WAL: WALOptions{SyncDelay: -time.Second}},
		{WAL: WALOptions{CheckpointEvery: -time.Second}},
	} {
		if _, err := Open(o); err == nil {
			t.Errorf("Open(%+v) accepted invalid WAL options", o.WAL)
		}
	}
}

// TestBackgroundCheckpointer verifies the periodic checkpoint loop
// truncates the log without an explicit Save.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(Options{DataDir: dir, WAL: WALOptions{CheckpointEvery: 10 * time.Millisecond, SegmentBytes: 4096}})
	defer db.Close()
	tb, err := db.CreateTable("t", Int64Column("k"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := tb.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db.WALStats().Removed > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background checkpointer never truncated the log: %+v", db.WALStats())
}
