// Selftuning: the paper's complete vision (§VII) running end to end —
// "the Index Buffer is a useful puzzle piece to bring self-tuned
// adaptive partial indexing to life". An adaptation controller watches
// the query stream and redefines the partial index after a sustained
// workload shift (the slow, expensive disk-side loop), while the
// Adaptive Index Buffer keeps the shifted queries cheap during the gap.
// The output shows per-query cost through all three phases: before the
// shift (hits), the gap (buffer-bridged), and after adaptation (hits
// again).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
)

const (
	rows    = 40000
	domain  = 10000
	covered = 1000 // initial partial index: values 1..1000
	queries = 130
	shiftAt = 25
)

func main() {
	db, err := repro.Open(repro.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	t, err := db.CreateTable("events",
		repro.Int64Column("k"),
		repro.StringColumn("payload"),
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	pad := strings.Repeat("s", 260)
	for i := 0; i < rows; i++ {
		if _, err := t.Insert(int64(1+rng.Intn(domain)), pad); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.CreatePartialRangeIndex("k", 1, covered); err != nil {
		log.Fatal(err)
	}
	tuner, err := t.AutoTune("k", repro.AutoTunePolicy{
		Window: 40, MissRate: 0.8, BucketWidth: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("events: %d pages; partial index covers [1, %d]\n", t.NumPages(), covered)
	fmt.Printf("workload shifts to the uncovered hot range [7000, 7999] at query %d\n\n", shiftAt)
	fmt.Printf("%-6s %-10s %-20s %s\n", "query", "pages", "phase", "note")

	qrng := rand.New(rand.NewSource(77))
	for q := 0; q < queries; q++ {
		var key int64
		phase := "pre-shift (hits)"
		if q < shiftAt {
			key = int64(1 + qrng.Intn(covered))
		} else {
			key = int64(7000 + qrng.Intn(1000))
			phase = "gap (buffer bridge)"
		}
		if tuner.Adaptations() > 0 && q >= shiftAt {
			phase = "post-adaptation"
		}
		_, stats, adapted, err := tuner.Query(key)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if adapted {
			note = "<- controller redefined the partial index here"
		}
		if q%10 == 0 || adapted || q == shiftAt {
			marker := ""
			if q == shiftAt {
				marker = "<- workload shift"
			}
			fmt.Printf("%-6d %-10d %-20s %s%s\n", q, stats.PagesRead, phase, note, marker)
		}
	}
	fmt.Printf("\ncontroller adaptations: %d\n", tuner.Adaptations())
	for _, b := range db.BufferStats() {
		fmt.Printf("index buffer %s: %d entries covering %d pages\n", b.Name, b.Entries, b.BufferedPages)
	}
}
