// Flights: the paper's motivating scenario (§II, Figures 2 and 4). A
// provider of on-time-performance reports indexes its flights by airport,
// but only the U.S. airports it usually sells reports for. When German
// reports are suddenly requested, queries miss the partial index; the
// example compares how the system behaves with and without the Adaptive
// Index Buffer across a burst of such queries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
)

const rows = 30000

func main() {
	us := codes('U', 200)
	de := codes('D', 200)

	load := func(db *repro.DB) *repro.Table {
		t, err := db.CreateTable("flights",
			repro.StringColumn("airport"),
			repro.Int64Column("delay"),
			repro.StringColumn("details"),
		)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		pad := strings.Repeat("d", 240)
		for i := 0; i < rows; i++ {
			var a string
			if rng.Intn(2) == 0 {
				a = us[rng.Intn(len(us))]
			} else {
				a = de[rng.Intn(len(de))]
			}
			if _, err := t.Insert(a, int64(rng.Intn(120)), pad); err != nil {
				log.Fatal(err)
			}
		}
		if err := t.CreatePartialSetIndex("airport", toAny(us)...); err != nil {
			log.Fatal(err)
		}
		return t
	}

	dbBuf, err := repro.Open(repro.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	dbBase, err := repro.Open(repro.Options{Seed: 3, DisableIndexBuffer: true})
	if err != nil {
		log.Fatal(err)
	}
	withBuffer := load(dbBuf)
	baseline := load(dbBase)

	fmt.Printf("flights table: %d pages; partial index covers %d U.S. airports\n\n",
		withBuffer.NumPages(), len(us))
	fmt.Println("German report burst: 30 queries for German airports")
	fmt.Printf("%-8s %-22s %-22s\n", "query", "with Index Buffer", "baseline (no buffer)")

	rng := rand.New(rand.NewSource(99))
	totalWith, totalBase := 0, 0
	for q := 0; q < 30; q++ {
		airport := de[rng.Intn(len(de))]
		_, sw, err := withBuffer.Query("airport", airport)
		if err != nil {
			log.Fatal(err)
		}
		_, sb, err := baseline.Query("airport", airport)
		if err != nil {
			log.Fatal(err)
		}
		totalWith += sw.PagesRead
		totalBase += sb.PagesRead
		if q < 5 || q%10 == 9 {
			fmt.Printf("%-8d %6d pages read     %6d pages read\n", q, sw.PagesRead, sb.PagesRead)
		}
	}
	fmt.Printf("\ntotal pages read over the burst: %d with buffer vs %d baseline (%.1fx saved)\n",
		totalWith, totalBase, float64(totalBase)/float64(totalWith))
}

func codes(prefix byte, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%c%c%c", prefix, 'A'+(i/26)%26, 'A'+i%26)
	}
	return out
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
