// Quickstart: the smallest complete use of the library — create a table,
// load rows, add a partial index, and watch an uncovered query go from a
// full scan to page skips thanks to the Adaptive Index Buffer.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	db, err := repro.Open(repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	orders, err := db.CreateTable("orders",
		repro.Int64Column("price"),
		repro.StringColumn("item"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Load 50,000 orders; prices are uniform in [1, 1000].
	pad := strings.Repeat("·", 60)
	for i := 0; i < 50000; i++ {
		price := int64(1 + (i*7919)%1000) // deterministic pseudo-uniform
		if _, err := orders.Insert(price, fmt.Sprintf("item-%d %s", i, pad)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("orders table: %d pages\n", orders.NumPages())

	// Cheap products are queried often, so the DBA indexes only them.
	if err := orders.CreatePartialRangeIndex("price", 1, 100); err != nil {
		log.Fatal(err)
	}

	show := func(price int64) {
		rows, stats, err := orders.Query("price", price)
		if err != nil {
			log.Fatal(err)
		}
		path := "indexing scan"
		if stats.PartialHit {
			path = "index hit"
		}
		fmt.Printf("price=%-4d %3d rows via %-13s (%4d pages read, %4d skipped)\n",
			price, len(rows), path, stats.PagesRead, stats.PagesSkipped)
	}

	fmt.Println("\ncovered query (partial index answers directly):")
	show(42)

	fmt.Println("\nuncovered queries (first pays the scan and builds the buffer):")
	show(900)
	show(901)
	show(902)

	fmt.Println("\nindex buffer state:")
	for _, b := range db.BufferStats() {
		fmt.Printf("  %s: %d entries covering %d pages\n", b.Name, b.Entries, b.BufferedPages)
	}
}
