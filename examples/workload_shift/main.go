// Workload shift: the paper's experiment 3 (Figure 8) through the public
// API. Three columns carry partial indexes; their Index Buffers compete
// for a bounded Index Buffer Space while the query mix shifts from
// favoring column A to favoring column C. The example prints the per-
// buffer occupancy over time — watch the space reallocate itself.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
)

const (
	rows       = 30000
	domain     = 5000
	coveredTop = 500 // partial indexes cover values 1..500
	queries    = 120
	spaceLimit = 40000 // entries; enough for ~1.5 of the three full buffers
)

func main() {
	// IMax and PartitionPages keep the paper's ratio I^MAX < P (5,000 vs
	// 10,000 pages): a complete old partition outbenefits one scan's new
	// information unless its buffer has gone noticeably colder, which
	// prevents thrash while still letting a real mix shift reallocate the
	// space.
	db, err := repro.Open(repro.Options{
		SpaceLimit:     spaceLimit,
		IMax:           200,
		PartitionPages: 300,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, err := db.CreateTable("events",
		repro.Int64Column("a"),
		repro.Int64Column("b"),
		repro.Int64Column("c"),
		repro.StringColumn("payload"),
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pad := strings.Repeat("e", 200)
	for i := 0; i < rows; i++ {
		if _, err := t.Insert(
			int64(1+rng.Intn(domain)), int64(1+rng.Intn(domain)), int64(1+rng.Intn(domain)), pad,
		); err != nil {
			log.Fatal(err)
		}
	}
	for _, col := range []string{"a", "b", "c"} {
		if err := t.CreatePartialRangeIndex(col, 1, coveredTop); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("events table: %d pages; space limit %d entries\n", t.NumPages(), spaceLimit)
	fmt.Printf("mix: first half (A:1/2 B:1/3 C:1/6), second half (A:1/6 B:1/3 C:1/2)\n\n")
	fmt.Printf("%-6s %10s %10s %10s %10s\n", "query", "A entries", "B entries", "C entries", "used")

	columns := []string{"a", "b", "c"}
	for q := 0; q < queries; q++ {
		// Pick a column by the phase's weights.
		var col string
		r := rng.Float64()
		first := q < queries/2
		switch {
		case (first && r < 0.5) || (!first && r < 1.0/6):
			col = "a"
		case r < 0.5+1.0/3 && first, !first && r < 0.5:
			col = "b"
		default:
			col = "c"
		}
		// Uncovered key: the query exercises the Index Buffer.
		key := int64(coveredTop + 1 + rng.Intn(domain-coveredTop))
		if _, _, err := t.Query(col, key); err != nil {
			log.Fatal(err)
		}
		if q%10 == 9 || q == queries/2 {
			occ := map[string]int{}
			for _, b := range db.BufferStats() {
				for _, c := range columns {
					if strings.HasSuffix(b.Name, "."+c) {
						occ[c] = b.Entries
					}
				}
			}
			marker := ""
			if q == queries/2 {
				marker = "  <- mix flips here"
			}
			fmt.Printf("%-6d %10d %10d %10d %10d%s\n", q, occ["a"], occ["b"], occ["c"], db.SpaceUsed(), marker)
		}
	}
}
