// Structures: the paper notes (§III) that the Index Buffer's concrete
// index structure is interchangeable — "a normal B*-Tree", a CSB+-tree,
// or a hash table. This example runs the same miss-heavy workload over
// all three backends and compares their wall-clock behaviour and
// identical logical effects.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro"
)

const (
	rows    = 20000
	domain  = 2000
	covered = 200
	queries = 60
)

func main() {
	fmt.Printf("%-10s %12s %12s %14s %12s\n",
		"structure", "total time", "pages read", "pages skipped", "entries")
	for _, cfg := range []struct {
		name string
		st   repro.Structure
	}{
		{"btree", repro.BTree},
		{"csbtree", repro.CSBTree},
		{"hash", repro.HashTable},
	} {
		elapsed, pagesRead, skipped, entries := run(cfg.st)
		fmt.Printf("%-10s %12s %12d %14d %12d\n",
			cfg.name, elapsed.Round(time.Microsecond), pagesRead, skipped, entries)
	}
	fmt.Println("\nLogical costs are identical across structures; only constants differ —")
	fmt.Println("exactly the paper's claim that the structure choice is not essential.")
}

func run(st repro.Structure) (time.Duration, int, int, int) {
	db, err := repro.Open(repro.Options{Structure: st, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	t, err := db.CreateTable("data",
		repro.Int64Column("k"),
		repro.StringColumn("payload"),
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	pad := strings.Repeat("q", 220)
	for i := 0; i < rows; i++ {
		if _, err := t.Insert(int64(1+rng.Intn(domain)), pad); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.CreatePartialRangeIndex("k", 1, covered); err != nil {
		log.Fatal(err)
	}

	qrng := rand.New(rand.NewSource(23))
	start := time.Now()
	totalRead, totalSkipped := 0, 0
	for q := 0; q < queries; q++ {
		key := int64(covered + 1 + qrng.Intn(domain-covered))
		_, stats, err := t.Query("k", key)
		if err != nil {
			log.Fatal(err)
		}
		totalRead += stats.PagesRead
		totalSkipped += stats.PagesSkipped
	}
	return time.Since(start), totalRead, totalSkipped, db.SpaceUsed()
}
