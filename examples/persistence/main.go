// Persistence: tables and partial index definitions survive a restart
// via Save/OpenExisting, while the Index Buffer — volatile by design,
// "without need for recovery" (paper §III) — starts empty and simply
// rebuilds itself from the first few misses. The output shows the cost
// profile before shutdown, right after reopening, and after the buffer
// has warmed back up.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "aib-persist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Session 1: create, load, index, warm the buffer, save.
	db, err := repro.Open(repro.Options{DataDir: dir, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t, err := db.CreateTable("events", repro.Int64Column("k"), repro.StringColumn("payload"))
	if err != nil {
		log.Fatal(err)
	}
	pad := strings.Repeat("p", 300)
	for i := 0; i < 20000; i++ {
		if _, err := t.Insert(int64(1+(i*7919)%5000), pad); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.CreatePartialRangeIndex("k", 1, 500); err != nil {
		log.Fatal(err)
	}
	show := func(label string, t *repro.Table, key int64) {
		_, stats, err := t.Query("k", key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %5d pages read, %5d skipped\n", label, stats.PagesRead, stats.PagesSkipped)
	}
	fmt.Println("session 1:")
	show("  miss (builds the buffer)", t, 3000)
	show("  repeat miss (skips)", t, 3001)
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s and closed\n\n", dir)

	// Session 2: reopen. Data and index are back; the buffer is empty.
	db2, err := repro.OpenExisting(repro.Options{DataDir: dir, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	t2 := db2.Table("events")
	n, err := t2.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: reopened with %d rows, %d pages\n", n, t2.NumPages())
	for _, b := range db2.BufferStats() {
		fmt.Printf("  index buffer %s after restart: %d entries (volatile, as the paper intends)\n",
			b.Name, b.Entries)
	}
	show("  covered query (index persisted)", t2, 200)
	show("  first miss (cold buffer)", t2, 3000)
	show("  repeat miss (warm again)", t2, 3001)
}
