package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newObsDB builds a small database with a partial index and runs a hit
// and a miss so every monitor has data.
func newObsDB(t *testing.T) *DB {
	t.Helper()
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(int64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("a", 0, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Query("a", 5); err != nil { // hit
		t.Fatal(err)
	}
	if _, _, err := tb.Query("a", 60); err != nil { // miss: indexing scan
		t.Fatal(err)
	}
	return db
}

func TestDBTraceEvents(t *testing.T) {
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("a"), Int64Column("b"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(int64(i%100), int64(i%100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("a", 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialRangeIndex("b", 0, 20); err != nil {
		t.Fatal(err)
	}

	if _, _, err := tb.Query("a", 60); err != nil {
		t.Fatal(err)
	}
	if n := len(db.TraceEvents()); n != 0 {
		t.Fatalf("%d trace events recorded while disabled", n)
	}

	// The miss on b runs a fresh indexing scan, so the enabled path sees
	// the full span sequence: admission, leadership, page selection and
	// page completion.
	db.EnableTraceEvents(true)
	if _, _, err := tb.Query("b", 70); err != nil {
		t.Fatal(err)
	}
	events := db.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events after EnableTraceEvents(true)")
	}
	kinds := make(map[string]bool)
	for _, ev := range events {
		kinds[ev.Kind] = true
		if ev.Seq == 0 {
			t.Error("span with zero sequence number")
		}
	}
	for _, want := range []string{"miss-admit", "scan-lead", "page-select", "page-complete"} {
		if !kinds[want] {
			t.Errorf("missing span kind %q (got %v)", want, kinds)
		}
	}
}

func TestDBLatencyStats(t *testing.T) {
	db := newObsDB(t)
	byMech := make(map[string]int)
	for _, l := range db.LatencyStats() {
		byMech[l.Mechanism] = l.Count
	}
	if byMech["hit"] != 1 || byMech["indexing-scan"] != 1 {
		t.Errorf("latency counts = %v, want one hit and one indexing-scan", byMech)
	}
}

func TestDBMetricsHandler(t *testing.T) {
	db := newObsDB(t)

	var sb strings.Builder
	if err := db.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aib_shared_scan_misses_total 1") {
		t.Errorf("WriteMetrics output missing shared-scan counter:\n%s", sb.String())
	}

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		`aib_queries_total{table="t",column="a"} 2`,
		`aib_buffer_entries{buffer="t.a",tenant=""}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

// execOK runs one statement through the front door and fails the test on
// error.
func execOK(t *testing.T, db *DB, stmt string) ExecResult {
	t.Helper()
	r, err := db.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return r
}

// TestFlightRecorderE2E drives statements through DB.Exec against a
// DataDir-backed database and checks the flight recorder captured them:
// minted trace IDs, query attribution, WAL commit accounting on DML,
// slow capture, SHOW SLOW rendering and the FlightRecords filter.
func TestFlightRecorderE2E(t *testing.T) {
	db := MustOpen(Options{DataDir: t.TempDir()})
	defer db.Close()
	db.EnableFlightRecorder(time.Hour) // capture everything, nothing is "slow" yet

	execOK(t, db, "CREATE TABLE t (a INT, b VARCHAR)")
	execOK(t, db, "CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 20")
	for i := 0; i < 120; i++ {
		execOK(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'p%d')", i%40+1, i))
	}
	execOK(t, db, "SELECT * FROM t WHERE a = 30") // miss: indexing scan

	recs := db.RecentQueries(0)
	if len(recs) < 120 {
		t.Fatalf("recent ring holds %d records, want >= 120", len(recs))
	}
	sel := recs[0] // newest first: the SELECT
	if sel.Stmt != "SELECT * FROM t WHERE a = 30" || sel.Tenant != "default" {
		t.Fatalf("newest record is not the SELECT: %+v", sel)
	}
	if !strings.HasPrefix(sel.Trace, "aib-") {
		t.Errorf("embedded statement did not get a minted trace ID: %q", sel.Trace)
	}
	if sel.Table != "t" || sel.Column != "a" || sel.Mechanism != "indexing-scan" {
		t.Errorf("query attribution wrong: %+v", sel)
	}
	if sel.PagesRead == 0 || len(sel.Spans) == 0 {
		t.Errorf("SELECT record has no page/span detail: %+v", sel)
	}
	ins := recs[1] // an INSERT: durable on return, so WAL time was spent
	if ins.WALCommitNanos <= 0 || ins.WALBatch < 1 {
		t.Errorf("DML record missing WAL commit accounting: %+v", ins)
	}
	if sel.WALCommitNanos != 0 {
		t.Errorf("read-only record charged WAL time: %+v", sel)
	}

	// FlightRecords resolves the SELECT by its minted trace ID.
	byTrace := db.FlightRecords(sel.Trace, "", 0, 0)
	if len(byTrace) != 1 || byTrace[0].Seq != sel.Seq {
		t.Fatalf("FlightRecords(trace) = %+v, want exactly the SELECT", byTrace)
	}

	// Drop the threshold to 1ns: the next statement is captured as slow
	// and SHOW SLOW renders it.
	db.EnableFlightRecorder(1)
	execOK(t, db, "SELECT * FROM t WHERE a = 5") // hit
	slow := db.SlowQueries(0)
	if len(slow) == 0 {
		t.Fatal("no slow captures at a 1ns threshold")
	}
	out := execOK(t, db, "SHOW SLOW 5").Output
	if !strings.Contains(out, "SELECT * FROM t WHERE a = 5") {
		t.Errorf("SHOW SLOW does not list the slow SELECT:\n%s", out)
	}
	if !strings.Contains(out, "trace") || !strings.Contains(out, "wal_ms") {
		t.Errorf("SHOW SLOW header missing:\n%s", out)
	}

	st := db.FlightStats()
	if !st.Enabled || st.Completed < 123 || st.Slow == 0 {
		t.Errorf("FlightStats = %+v", st)
	}
}

// TestFlightRecorderDisabledInert mirrors TestTimelineDisabledIsInert
// at the statement layer: with the recorder off (the default), Exec
// leaves no records and no counters behind.
func TestFlightRecorderDisabledInert(t *testing.T) {
	db := newObsDB(t)
	defer db.Close()
	if db.FlightRecorderEnabled() {
		t.Fatal("flight recorder enabled by default")
	}
	execOK(t, db, "SELECT * FROM t WHERE a = 5")
	if n := len(db.RecentQueries(0)); n != 0 {
		t.Fatalf("disabled recorder captured %d records", n)
	}
	if st := db.FlightStats(); st.Enabled || st.Completed != 0 {
		t.Fatalf("disabled recorder counted: %+v", st)
	}
	out := execOK(t, db, "SHOW SLOW").Output
	if !strings.Contains(out, "off") {
		t.Errorf("SHOW SLOW with recorder off = %q, want an off notice", out)
	}

	// Enable/disable round-trip: records stop accruing after Disable.
	db.EnableFlightRecorder(0)
	execOK(t, db, "SELECT * FROM t WHERE a = 6")
	if n := len(db.RecentQueries(0)); n != 1 {
		t.Fatalf("enabled recorder captured %d records, want 1", n)
	}
	db.DisableFlightRecorder()
	execOK(t, db, "SELECT * FROM t WHERE a = 7")
	if n := len(db.RecentQueries(0)); n != 1 {
		t.Fatalf("disable did not stop capture: %d records", n)
	}
}
