package repro

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// newObsDB builds a small database with a partial index and runs a hit
// and a miss so every monitor has data.
func newObsDB(t *testing.T) *DB {
	t.Helper()
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(int64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("a", 0, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Query("a", 5); err != nil { // hit
		t.Fatal(err)
	}
	if _, _, err := tb.Query("a", 60); err != nil { // miss: indexing scan
		t.Fatal(err)
	}
	return db
}

func TestDBTraceEvents(t *testing.T) {
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("a"), Int64Column("b"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(int64(i%100), int64(i%100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("a", 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialRangeIndex("b", 0, 20); err != nil {
		t.Fatal(err)
	}

	if _, _, err := tb.Query("a", 60); err != nil {
		t.Fatal(err)
	}
	if n := len(db.TraceEvents()); n != 0 {
		t.Fatalf("%d trace events recorded while disabled", n)
	}

	// The miss on b runs a fresh indexing scan, so the enabled path sees
	// the full span sequence: admission, leadership, page selection and
	// page completion.
	db.EnableTraceEvents(true)
	if _, _, err := tb.Query("b", 70); err != nil {
		t.Fatal(err)
	}
	events := db.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events after EnableTraceEvents(true)")
	}
	kinds := make(map[string]bool)
	for _, ev := range events {
		kinds[ev.Kind] = true
		if ev.Seq == 0 {
			t.Error("span with zero sequence number")
		}
	}
	for _, want := range []string{"miss-admit", "scan-lead", "page-select", "page-complete"} {
		if !kinds[want] {
			t.Errorf("missing span kind %q (got %v)", want, kinds)
		}
	}
}

func TestDBLatencyStats(t *testing.T) {
	db := newObsDB(t)
	byMech := make(map[string]int)
	for _, l := range db.LatencyStats() {
		byMech[l.Mechanism] = l.Count
	}
	if byMech["hit"] != 1 || byMech["indexing-scan"] != 1 {
		t.Errorf("latency counts = %v, want one hit and one indexing-scan", byMech)
	}
}

func TestDBMetricsHandler(t *testing.T) {
	db := newObsDB(t)

	var sb strings.Builder
	if err := db.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aib_shared_scan_misses_total 1") {
		t.Errorf("WriteMetrics output missing shared-scan counter:\n%s", sb.String())
	}

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		`aib_queries_total{table="t",column="a"} 2`,
		`aib_buffer_entries{buffer="t.a",tenant=""}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}
