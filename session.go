package repro

import (
	"context"

	"repro/internal/shell"
)

// This file is the statement-execution front door: one context-aware
// entry point — Exec — shared by cmd/aibshell, cmd/aibserver and tests,
// plus tenant-scoped Sessions over it. Statements are the shell query
// language (CREATE TABLE, INSERT, SELECT ... WHERE col = v / BETWEEN,
// EXPLAIN, SHOW ..., see HELP); Exec parses and executes exactly one
// statement per call.

// ExecResult is the outcome of one executed statement.
type ExecResult struct {
	// Output is the human-readable response, possibly multi-line.
	Output string
	// Rows is the number of rows returned (SELECT) or affected
	// (INSERT/DELETE/UPDATE); zero for DDL and SHOW.
	Rows int
	// Stats carries the execution profile of a SELECT, nil otherwise.
	Stats *QueryStats
	// Quit reports that the statement was EXIT/QUIT — a REPL or a server
	// connection should end the session.
	Quit bool
}

// Exec parses and executes one statement against the default tenant.
// Query statements honor ctx between page reads, so a long scan is
// abandoned when the caller gives up; ctx errors surface as
// context.Canceled / context.DeadlineExceeded. Safe for concurrent use.
func (db *DB) Exec(ctx context.Context, stmt string) (ExecResult, error) {
	return execShell(ctx, db.sh, stmt)
}

// Session is a tenant-scoped statement executor: its statements see only
// the tenant's tables, and the tenant's Index-Buffer quota governs how
// its misses adapt. Sessions are cheap (create one per connection) and
// safe for concurrent use.
type Session struct {
	db     *DB
	tenant string
	sh     *shell.Shell
}

// Session returns a statement executor scoped to the named tenant. The
// empty name is the default tenant; an unregistered name fails with
// ErrTenantUnknown.
func (db *DB) Session(tenant string) (*Session, error) {
	tn, err := db.eng.TenantFor(tenant)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, tenant: tenant, sh: shell.NewTenant(db.eng, tn)}, nil
}

// Exec parses and executes one statement in the session's tenant scope;
// see DB.Exec.
func (s *Session) Exec(ctx context.Context, stmt string) (ExecResult, error) {
	return execShell(ctx, s.sh, stmt)
}

// Tenant returns the session's tenant name ("" = default tenant).
func (s *Session) Tenant() string { return s.tenant }

func execShell(ctx context.Context, sh *shell.Shell, stmt string) (ExecResult, error) {
	r, err := sh.EvalCtx(ctx, stmt)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Output: r.Output, Rows: r.Rows, Stats: r.Stats, Quit: r.Quit}, nil
}

// CreateTenant registers a budget domain after Open; see Options.Tenants
// for the semantics. It fails on duplicate or empty names.
func (db *DB) CreateTenant(t Tenant) error {
	_, err := db.eng.CreateTenant(t.Name, t.Quota, t.Strict)
	return err
}

// TenantStats is one tenant's quota ledger: configured budget, current
// occupancy, and how its over-quota misses and cross-tenant evictions
// have accumulated.
type TenantStats struct {
	Name   string
	Quota  int  // configured entry budget (0 = unlimited)
	Strict bool // over-quota misses error instead of degrading
	Used   int  // entries currently held by the tenant's buffers
	// Degraded counts misses that ran as unindexed scans because the
	// tenant was over quota.
	Degraded uint64
	// Evicted counts entries the tenant lost to other tenants' scans
	// (possible only when quotas overcommit SpaceLimit).
	Evicted uint64
}

// TenantStats reads every tenant's quota ledger, in creation order.
func (db *DB) TenantStats() []TenantStats {
	var out []TenantStats
	for _, tn := range db.eng.Tenants() {
		q := tn.Quota()
		if q < 0 {
			q = 0
		}
		out = append(out, TenantStats{
			Name:     tn.Name(),
			Quota:    q,
			Strict:   tn.Strict(),
			Used:     tn.Used(),
			Degraded: tn.Degraded(),
			Evicted:  tn.Evicted(),
		})
	}
	return out
}
