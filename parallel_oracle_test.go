package repro

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/storage"
)

// This file is the serial-oracle property harness for parallel scan
// execution: two engines differing only in Options.ScanParallelism are
// driven through the same seeded stream of queries and DML, and every
// observable — result sets, query stats, the per-page counter table
// C[p] — must stay identical after every operation. The serial engine
// (parallelism 1) is the oracle; any divergence is a parallel-scan bug.
// CI runs this under -race as the parallel-scan stress step.

// oracleHarness is one engine of the property-test pair plus its live
// RID book-keeping.
type oracleHarness struct {
	db   *DB
	tb   *Table
	rids []RID
}

// newOracleHarness builds a DB at the given scan parallelism with a
// deterministically seeded table. Everything except parallelism is
// identical across calls.
func newOracleHarness(t *testing.T, parallelism, rows, keyDomain, covered int) *oracleHarness {
	t.Helper()
	db := MustOpen(Options{
		IMax:            60,
		PartitionPages:  16,
		SpaceLimit:      3000,
		PoolPages:       48,
		Seed:            11,
		ScanParallelism: parallelism,
	})
	t.Cleanup(func() { db.Close() })
	tb, err := db.CreateTable("data", Int64Column("k"), Int64Column("v"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	h := &oracleHarness{db: db, tb: tb}
	for i := 0; i < rows; i++ {
		rid, err := tb.Insert(int64(i%keyDomain), int64(i), fmt.Sprintf("pad-%04d-%0160d", i, i))
		if err != nil {
			t.Fatal(err)
		}
		h.rids = append(h.rids, rid)
	}
	if err := tb.CreatePartialRangeIndex("k", 0, covered-1); err != nil {
		t.Fatal(err)
	}
	return h
}

// normalizeStats zeroes the fields allowed to differ across parallelism
// settings: wall time and the scan fan-out itself.
func normalizeStats(s QueryStats) QueryStats {
	s.Duration = 0
	s.ScanWorkers = 0
	return s
}

// diffCounters asserts the two engines' C[p] tables are identical and
// non-negative on every page.
func diffCounters(t *testing.T, op string, serial, par *oracleHarness) {
	t.Helper()
	sb, pb := serial.tb.t.Buffer(0), par.tb.t.Buffer(0)
	pages := serial.tb.NumPages()
	if pp := par.tb.NumPages(); pp != pages {
		t.Fatalf("%s: page counts diverged: serial %d, parallel %d", op, pages, pp)
	}
	for p := 0; p < pages; p++ {
		pg := storage.PageID(p)
		sc, pc := sb.Counter(pg), pb.Counter(pg)
		if sc != pc {
			t.Fatalf("%s: C[%d] serial %d, parallel %d", op, p, sc, pc)
		}
		if pc < 0 {
			t.Fatalf("%s: C[%d] = %d negative", op, p, pc)
		}
	}
}

// diffQuery asserts one query produced identical results and stats on
// both engines.
func diffQuery(t *testing.T, op string, sRows, pRows []Row, sStats, pStats QueryStats, sErr, pErr error) {
	t.Helper()
	if (sErr == nil) != (pErr == nil) {
		t.Fatalf("%s: serial err %v, parallel err %v", op, sErr, pErr)
	}
	if len(sRows) != len(pRows) {
		t.Fatalf("%s: %d serial rows, %d parallel rows", op, len(sRows), len(pRows))
	}
	for i := range sRows {
		if sRows[i].RID != pRows[i].RID {
			t.Fatalf("%s row %d: serial %v, parallel %v", op, i, sRows[i].RID, pRows[i].RID)
		}
	}
	if ns, np := normalizeStats(sStats), normalizeStats(pStats); ns != np {
		t.Fatalf("%s stats:\nserial   %+v\nparallel %+v", op, ns, np)
	}
}

// TestParallelSerialOracleProperty drives the serial engine and a
// parallel engine through the same randomized mixed query/DML stream and
// checks identity after every operation. Runs at parallelism 1 (harness
// self-check), 2, and NumCPU; the seed is fixed so failures replay.
func TestParallelSerialOracleProperty(t *testing.T) {
	const (
		rows      = 500
		keyDomain = 40
		covered   = 8
		ops       = 250
	)
	levels := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	for _, par := range levels {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			serial := newOracleHarness(t, 1, rows, keyDomain, covered)
			parallel := newOracleHarness(t, par, rows, keyDomain, covered)
			rng := rand.New(rand.NewSource(99))
			nextRow := rows
			for i := 0; i < ops; i++ {
				var op string
				switch c := rng.Intn(10); {
				case c < 5: // equality query, mostly uncovered keys
					k := int64(rng.Intn(keyDomain))
					op = fmt.Sprintf("op %d: query k=%d", i, k)
					sr, ss, se := serial.tb.Query("k", k)
					pr, ps, pe := parallel.tb.Query("k", k)
					diffQuery(t, op, sr, pr, ss, ps, se, pe)
				case c < 6: // range query
					lo := int64(rng.Intn(keyDomain))
					hi := lo + int64(rng.Intn(keyDomain/4))
					op = fmt.Sprintf("op %d: range [%d,%d]", i, lo, hi)
					sr, ss, se := serial.tb.QueryRange("k", lo, hi)
					pr, ps, pe := parallel.tb.QueryRange("k", lo, hi)
					diffQuery(t, op, sr, pr, ss, ps, se, pe)
				case c < 8: // insert
					k := int64(rng.Intn(keyDomain))
					op = fmt.Sprintf("op %d: insert k=%d", i, k)
					sr, se := serial.tb.Insert(k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
					pr, pe := parallel.tb.Insert(k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
					nextRow++
					if se != nil || pe != nil || sr != pr {
						t.Fatalf("%s: serial (%v, %v), parallel (%v, %v)", op, sr, se, pr, pe)
					}
					serial.rids = append(serial.rids, sr)
					parallel.rids = append(parallel.rids, pr)
				case c < 9: // delete a random live row
					if len(serial.rids) == 0 {
						continue
					}
					j := rng.Intn(len(serial.rids))
					op = fmt.Sprintf("op %d: delete %v", i, serial.rids[j])
					se := serial.tb.Delete(serial.rids[j])
					pe := parallel.tb.Delete(parallel.rids[j])
					if se != nil || pe != nil {
						t.Fatalf("%s: serial %v, parallel %v", op, se, pe)
					}
					serial.rids = append(serial.rids[:j], serial.rids[j+1:]...)
					parallel.rids = append(parallel.rids[:j], parallel.rids[j+1:]...)
				default: // update a random live row to a new key
					if len(serial.rids) == 0 {
						continue
					}
					j := rng.Intn(len(serial.rids))
					k := int64(rng.Intn(keyDomain))
					op = fmt.Sprintf("op %d: update %v k=%d", i, serial.rids[j], k)
					sr, se := serial.tb.Update(serial.rids[j], k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
					pr, pe := parallel.tb.Update(parallel.rids[j], k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
					nextRow++
					if se != nil || pe != nil || sr != pr {
						t.Fatalf("%s: serial (%v, %v), parallel (%v, %v)", op, sr, se, pr, pe)
					}
					serial.rids[j], parallel.rids[j] = sr, pr
				}
				diffCounters(t, op, serial, parallel)
			}
			// The Space budget balances the buffers on both engines.
			for _, h := range []*oracleHarness{serial, parallel} {
				total := 0
				for _, b := range h.db.eng.Space().Buffers() {
					total += b.EntryCount()
				}
				if used := h.db.SpaceUsed(); used != total {
					t.Fatalf("Space.Used() = %d, buffers hold %d entries", used, total)
				}
			}
		})
	}
}

// TestParallelScanCancellationNoLeaks cancels a query mid-parallel-scan
// and checks the three cancellation guarantees: the caller gets ctx.Err
// promptly (well before the device-bound scan could finish serially),
// the aborted scan applied nothing to the Index Buffer (every C[p] still
// reads its full uncovered count — no page assignment to roll back), and
// every worker goroutine exits.
func TestParallelScanCancellationNoLeaks(t *testing.T) {
	const (
		rows      = 1200
		keyDomain = 100
		covered   = 5
	)
	// The pool is far smaller than the table so the scan stays
	// device-bound: with LRU and a sequential walk, essentially every
	// page fetch pays the simulated read latency.
	db := MustOpen(Options{
		PoolPages:       12,
		Seed:            3,
		ScanParallelism: 8,
		ReadLatency:     2 * time.Millisecond,
	})
	defer db.Close()
	tb, err := db.CreateTable("data", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(int64(i%keyDomain), fmt.Sprintf("pad-%04d-%0160d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, covered-1); err != nil {
		t.Fatal(err)
	}
	pages := tb.NumPages()
	serialFloor := time.Duration(pages) * 2 * time.Millisecond // what a serial scan would cost

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = tb.QueryCtx(ctx, "k", int64(covered+1)) // uncovered: needs the indexing scan
	elapsed := time.Since(start)
	if ctx.Err() == nil || err == nil {
		t.Fatalf("query returned err=%v before the context expired (elapsed %v)", err, elapsed)
	}
	if elapsed >= serialFloor/2 {
		t.Errorf("cancellation not prompt: returned after %v, serial scan floor is %v", elapsed, serialFloor)
	}

	// Whole-batch cancellation aborts before the merge: nothing applied.
	if used := db.SpaceUsed(); used != 0 {
		t.Errorf("Space.Used() = %d after canceled scan, want 0", used)
	}
	buf := tb.t.Buffer(0)
	for p := 0; p < pages; p++ {
		pg := storage.PageID(p)
		if got, want := buf.Counter(pg), buf.Uncovered(pg); got != want {
			t.Errorf("C[%d] = %d after canceled scan, want untouched %d", p, got, want)
		}
	}

	// Every worker must exit; give the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before the canceled scan, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine is healthy: the same query without cancellation completes
	// and builds the buffer.
	rowsOut, stats, err := tb.Query("k", int64(covered+1))
	if err != nil {
		t.Fatal(err)
	}
	if want := rows / keyDomain; len(rowsOut) != want {
		t.Errorf("post-cancel query: %d rows, want %d", len(rowsOut), want)
	}
	if stats.ScanWorkers <= 1 {
		t.Errorf("post-cancel query ran with %d workers, want parallel", stats.ScanWorkers)
	}
	if db.SpaceUsed() == 0 {
		t.Error("post-cancel scan built no buffer entries")
	}
}
