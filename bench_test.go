// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices called out in
// DESIGN.md §5. Figure benchmarks run the full experiment per iteration
// and report, beyond wall time, the shape-defining quantities as custom
// metrics so `go test -bench .` doubles as a reproduction report.
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/storage"
)

// benchRows keeps figure benchmarks laptop-fast while leaving enough
// pages (~700) for skip behaviour; pass the paper's 500000 through
// cmd/aibench for full scale.
const benchRows = 20000

// BenchmarkFig1ControlLoopDelay regenerates Figure 1: the adaptive
// partial indexing baseline's control loop delay.
func BenchmarkFig1ControlLoopDelay(b *testing.B) {
	var collapse, recovered float64
	for i := 0; i < b.N; i++ {
		r := bench.RunFig1(bench.DefaultFig1Options())
		collapse = r.HitRate.MeanRange(300, 340)
		recovered = r.HitRate.MeanRange(450, 500)
	}
	b.ReportMetric(collapse, "hitrate_during_shift")
	b.ReportMetric(recovered, "hitrate_recovered")
}

// BenchmarkFig3FullyIndexedPages regenerates Figure 3: fully indexed
// pages vs. physical/logical order correlation.
func BenchmarkFig3FullyIndexedPages(b *testing.B) {
	o := bench.Fig3Options{Tuples: 20000, Steps: 120, SwapsPerStep: 80, Seed: 1}
	var at08 float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig3(o)
		if err != nil {
			b.Fatal(err)
		}
		// The 10-tuples-per-page curve at correlation 0.8 (paper: <5%).
		frame := r.Frame()
		at08 = frame.Series[2].Y[4] // grid point 4 = correlation 0.8
	}
	b.ReportMetric(at08, "share_at_corr_0.8")
}

// BenchmarkFig6SingleBuffer regenerates Figure 6 (experiment 1).
func BenchmarkFig6SingleBuffer(b *testing.B) {
	var lateCost float64
	var tablePages int
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig6(bench.Options{Rows: benchRows, Queries: 100})
		if err != nil {
			b.Fatal(err)
		}
		lateCost = r.PagesRead.MeanRange(50, 100)
		tablePages = r.TablePages
	}
	b.ReportMetric(float64(tablePages), "scan_pages")
	b.ReportMetric(lateCost, "late_pages/query")
}

// BenchmarkFig7Sweep regenerates Figure 7 (experiment 2).
func BenchmarkFig7Sweep(b *testing.B) {
	configs := []bench.Fig7Config{
		{IMax: 1000, L: 0},
		{IMax: 5000, L: 0},
		{IMax: 5000, L: 100000},
	}
	var unlimited, capped float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig7(bench.Options{Rows: benchRows, Queries: 100}, configs)
		if err != nil {
			b.Fatal(err)
		}
		unlimited = r.Curves[1].PagesRead.MeanRange(50, 100)
		capped = r.Curves[2].PagesRead.MeanRange(50, 100)
	}
	b.ReportMetric(unlimited, "late_pages_unlimited")
	b.ReportMetric(capped, "late_pages_capped")
}

// BenchmarkFig8Competition regenerates Figure 8 (experiment 3).
func BenchmarkFig8Competition(b *testing.B) {
	var aFirst, cSecond float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig8(bench.Options{Rows: benchRows, Queries: 200})
		if err != nil {
			b.Fatal(err)
		}
		n := r.Entries[0].Len()
		aFirst = r.Entries[0].MeanRange(n/4, n/2)
		cSecond = r.Entries[2].MeanRange(3*n/4, n)
	}
	b.ReportMetric(aFirst, "entries_A_first_period")
	b.ReportMetric(cSecond, "entries_C_second_period")
}

// BenchmarkFig9HitRates regenerates Figure 9 (experiment 4).
func BenchmarkFig9HitRates(b *testing.B) {
	var aFirst, aSecond float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig9(bench.Options{Rows: benchRows, Queries: 200})
		if err != nil {
			b.Fatal(err)
		}
		n := r.Entries[0].Len()
		aFirst = r.Entries[0].MeanRange(n/4, n/2)
		aSecond = r.Entries[0].MeanRange(3*n/4, n)
	}
	b.ReportMetric(aFirst, "entries_A_at_80pct_hits")
	b.ReportMetric(aSecond, "entries_A_at_20pct_hits")
}

// BenchmarkTableIMaintenance measures the paper's Table I maintenance
// path: updates crossing every membership combination.
func BenchmarkTableIMaintenance(b *testing.B) {
	s := core.NewSpace(core.Config{P: 64})
	buf, err := s.CreateBuffer("t.a", make([]int, 256))
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < 128; p++ { // half the pages buffered
		if err := buf.BeginPage(storage.PageID(p)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oldV := storage.Int64Value(rng.Int63n(1000))
		newV := storage.Int64Value(rng.Int63n(1000))
		oldRID := storage.RID{Page: storage.PageID(rng.Intn(256)), Slot: uint16(i)}
		newRID := storage.RID{Page: storage.PageID(rng.Intn(256)), Slot: uint16(i)}
		buf.MaintainUpdate(oldV, newV, oldRID, newRID, i%4 == 0, i%3 == 0)
	}
}

// BenchmarkTableIILRUKOps measures the paper's Table II history
// operations across a populated Index Buffer Space.
func BenchmarkTableIILRUKOps(b *testing.B) {
	s := core.NewSpace(core.Config{K: 2})
	var bufs []*core.IndexBuffer
	for _, n := range []string{"a", "b", "c"} {
		buf, err := s.CreateBuffer("t."+n, make([]int, 16))
		if err != nil {
			b.Fatal(err)
		}
		bufs = append(bufs, buf)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnQuery(bufs[i%3], i%4 == 0)
	}
}

// benchEngine builds a 20k-row single-key-column table with a 10%
// partial index under the given core config, for the ablation
// benchmarks.
func benchEngine(b *testing.B, cfg core.Config) (*engine.Engine, *engine.Table) {
	b.Helper()
	eng := engine.New(engine.Config{Space: cfg})
	schema := storage.MustSchema(
		storage.Column{Name: "k", Kind: storage.KindInt64},
		storage.Column{Name: "payload", Kind: storage.KindString},
	)
	tb, err := eng.CreateTable("data", schema)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	pad := strings.Repeat("b", 220)
	for i := 0; i < benchRows; i++ {
		tu := storage.NewTuple(storage.Int64Value(int64(1+rng.Intn(2000))), storage.StringValue(pad))
		if _, err := tb.Insert(tu); err != nil {
			b.Fatal(err)
		}
	}
	if err := tb.CreatePartialIndex(0, index.IntRange(1, 200)); err != nil {
		b.Fatal(err)
	}
	return eng, tb
}

// BenchmarkAblationStructure compares the three buffer structures the
// paper names (§III) on the same workload.
func BenchmarkAblationStructure(b *testing.B) {
	for _, c := range []struct {
		name string
		st   Structure
	}{{"btree", BTree}, {"csbtree", CSBTree}, {"hash", HashTable}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := MustOpen(Options{Structure: c.st, IMax: 200, PartitionPages: 300, Seed: 9})
				tb, err := db.CreateTable("data", Int64Column("k"), StringColumn("payload"))
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(31))
				pad := strings.Repeat("b", 220)
				for r := 0; r < benchRows; r++ {
					if _, err := tb.Insert(int64(1+rng.Intn(2000)), pad); err != nil {
						b.Fatal(err)
					}
				}
				if err := tb.CreatePartialRangeIndex("k", 1, 200); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for q := 0; q < 60; q++ {
					if _, _, err := tb.Query("k", int64(201+rng.Intn(1800))); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationSelectionOrder compares the paper's ascending-counter
// page selection against descending and random under a tight space
// budget, where the choice determines how many pages the budget buys.
func BenchmarkAblationSelectionOrder(b *testing.B) {
	for _, sel := range []core.SelectionOrder{core.AscendingCounter, core.DescendingCounter, core.RandomOrder} {
		b.Run(sel.String(), func(b *testing.B) {
			cfg := core.Config{IMax: 100, P: 100, SpaceLimit: 6000, Selection: sel}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, tb := benchEngine(b, cfg)
				_ = eng
				rng := rand.New(rand.NewSource(42))
				b.StartTimer()
				skipped := 0
				const queries = 60
				for q := 0; q < queries; q++ {
					_, stats, err := tb.QueryEqual(0, storage.Int64Value(int64(201+rng.Intn(1800))))
					if err != nil {
						b.Fatal(err)
					}
					skipped += stats.PagesSkipped
				}
				b.ReportMetric(float64(skipped)/queries, "skips/query")
			}
		})
	}
}

// BenchmarkAblationPartitionSize varies P: small partitions displace
// precisely but fragment; huge partitions make displacement all-or-
// nothing.
func BenchmarkAblationPartitionSize(b *testing.B) {
	for _, p := range []int{10, 100, 1000} {
		b.Run(strings.Replace(strings.TrimSpace(string(rune('P')))+"="+itoa(p), " ", "", -1), func(b *testing.B) {
			cfg := core.Config{IMax: 100, P: p, SpaceLimit: 12000}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, tb := benchEngine(b, cfg)
				rng := rand.New(rand.NewSource(42))
				b.StartTimer()
				total := 0
				const queries = 60
				for q := 0; q < queries; q++ {
					_, stats, err := tb.QueryEqual(0, storage.Int64Value(int64(201+rng.Intn(1800))))
					if err != nil {
						b.Fatal(err)
					}
					total += stats.PagesRead
				}
				b.ReportMetric(float64(total)/queries, "pages/query")
			}
		})
	}
}

// BenchmarkAblationHistoryDepth varies the LRU-K depth K.
func BenchmarkAblationHistoryDepth(b *testing.B) {
	for _, k := range []int{1, 2, 8} {
		b.Run("K="+itoa(k), func(b *testing.B) {
			cfg := core.Config{IMax: 100, P: 100, K: k, SpaceLimit: 12000}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, tb := benchEngine(b, cfg)
				rng := rand.New(rand.NewSource(42))
				b.StartTimer()
				for q := 0; q < 60; q++ {
					if _, _, err := tb.QueryEqual(0, storage.Int64Value(int64(201+rng.Intn(1800)))); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

// BenchmarkBridge runs the extension experiment: the Index Buffer
// covering the gap between a workload shift and the partial index's
// adaptation, against the adaptation-only and never-adapting baselines.
func BenchmarkBridge(b *testing.B) {
	var base, adapt, adaptBuf float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunBridge(bench.BridgeOptions{Rows: 8000, Queries: 120, ShiftAt: 20})
		if err != nil {
			b.Fatal(err)
		}
		base, adapt, adaptBuf = r.Cumulative()
	}
	b.ReportMetric(base, "pages_baseline")
	b.ReportMetric(adapt, "pages_adapt_only")
	b.ReportMetric(adaptBuf, "pages_adapt_plus_buffer")
}

// BenchmarkAblationPoolSize varies the database buffer pool and reports
// device-level reads: with a pool big enough to cache the table, scans
// stop hitting the device and the Index Buffer's benefit shows up purely
// in CPU; with the paper's table >> pool setup, skipped pages are
// skipped device reads.
func BenchmarkAblationPoolSize(b *testing.B) {
	for _, pool := range []int{8, 64, 1024} {
		b.Run("pool="+itoa(pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := engine.New(engine.Config{PoolPages: pool, Space: core.Config{IMax: 200, P: 300}})
				schema := storage.MustSchema(
					storage.Column{Name: "k", Kind: storage.KindInt64},
					storage.Column{Name: "payload", Kind: storage.KindString},
				)
				tb, err := eng.CreateTable("data", schema)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(31))
				pad := strings.Repeat("b", 220)
				for r := 0; r < benchRows; r++ {
					tu := storage.NewTuple(storage.Int64Value(int64(1+rng.Intn(2000))), storage.StringValue(pad))
					if _, err := tb.Insert(tu); err != nil {
						b.Fatal(err)
					}
				}
				if err := tb.CreatePartialIndex(0, index.IntRange(1, 200)); err != nil {
					b.Fatal(err)
				}
				before := tb.DiskStats()
				b.StartTimer()
				for q := 0; q < 40; q++ {
					if _, _, err := tb.QueryEqual(0, storage.Int64Value(int64(201+rng.Intn(1800)))); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reads := tb.DiskStats().Sub(before).Reads
				b.ReportMetric(float64(reads)/40, "device_reads/query")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDMLOverhead measures the maintenance cost the Index Buffer
// machinery adds to inserts/updates/deletes (the paper's Table I in
// anger): the same DML stream against 0 and 3 indexed columns.
func BenchmarkDMLOverhead(b *testing.B) {
	for _, indexed := range []int{0, 1, 3} {
		b.Run("indexes="+itoa(indexed), func(b *testing.B) {
			eng := engine.New(engine.Config{Space: core.Config{IMax: 1000, P: 200}})
			schema := storage.MustSchema(
				storage.Column{Name: "a", Kind: storage.KindInt64},
				storage.Column{Name: "b", Kind: storage.KindInt64},
				storage.Column{Name: "c", Kind: storage.KindInt64},
				storage.Column{Name: "payload", Kind: storage.KindString},
			)
			tb, err := eng.CreateTable("data", schema)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			pad := strings.Repeat("d", 200)
			row := func() storage.Tuple {
				return storage.NewTuple(
					storage.Int64Value(1+rng.Int63n(1000)),
					storage.Int64Value(1+rng.Int63n(1000)),
					storage.Int64Value(1+rng.Int63n(1000)),
					storage.StringValue(pad),
				)
			}
			var rids []storage.RID
			for i := 0; i < 5000; i++ {
				rid, err := tb.Insert(row())
				if err != nil {
					b.Fatal(err)
				}
				rids = append(rids, rid)
			}
			for c := 0; c < indexed; c++ {
				if err := tb.CreatePartialIndex(c, index.IntRange(1, 100)); err != nil {
					b.Fatal(err)
				}
			}
			// Build buffers so maintenance has live partitions to keep
			// consistent.
			for c := 0; c < indexed; c++ {
				if _, _, err := tb.QueryEqual(c, storage.Int64Value(500)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch i % 3 {
				case 0:
					rid, err := tb.Insert(row())
					if err != nil {
						b.Fatal(err)
					}
					rids = append(rids, rid)
				case 1:
					j := i % len(rids)
					nr, err := tb.Update(rids[j], row())
					if err != nil {
						b.Fatal(err)
					}
					rids[j] = nr
				default:
					j := i % len(rids)
					if err := tb.Delete(rids[j]); err != nil {
						b.Fatal(err)
					}
					rids[j] = rids[len(rids)-1]
					rids = rids[:len(rids)-1]
				}
			}
		})
	}
}

// BenchmarkCorrelation runs the engine-level Figure 3 extension: the
// partial index's natural skip power and the buffer's completion cost
// across physical layouts.
func BenchmarkCorrelation(b *testing.B) {
	var clusteredShare, shuffledShare float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunCorrelation(bench.CorrelationOptions{Rows: 10000, Correlations: []float64{1.0, 0.0}})
		if err != nil {
			b.Fatal(err)
		}
		clusteredShare = r.Points[0].NaturalSkipShare
		shuffledShare = r.Points[1].NaturalSkipShare
	}
	b.ReportMetric(clusteredShare, "natural_skips_clustered")
	b.ReportMetric(shuffledShare, "natural_skips_shuffled")
}

// BenchmarkAblationVictimPolicy compares the paper's benefit-weighted
// victim selection against uniform random under a three-buffer workload
// with a skewed mix: the policy decides which buffer's partitions are
// sacrificed, visible as total pages read.
func BenchmarkAblationVictimPolicy(b *testing.B) {
	for _, vp := range []core.VictimPolicy{core.BenefitWeighted, core.UniformVictims} {
		b.Run(vp.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := engine.New(engine.Config{Space: core.Config{
					IMax: 50, P: 100, SpaceLimit: 20000, Victims: vp,
					Rand: rand.New(rand.NewSource(17)),
				}})
				schema := storage.MustSchema(
					storage.Column{Name: "a", Kind: storage.KindInt64},
					storage.Column{Name: "b", Kind: storage.KindInt64},
					storage.Column{Name: "c", Kind: storage.KindInt64},
					storage.Column{Name: "payload", Kind: storage.KindString},
				)
				tb, err := eng.CreateTable("data", schema)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(31))
				pad := strings.Repeat("v", 220)
				for r := 0; r < benchRows; r++ {
					tu := storage.NewTuple(
						storage.Int64Value(int64(1+rng.Intn(2000))),
						storage.Int64Value(int64(1+rng.Intn(2000))),
						storage.Int64Value(int64(1+rng.Intn(2000))),
						storage.StringValue(pad),
					)
					if _, err := tb.Insert(tu); err != nil {
						b.Fatal(err)
					}
				}
				for c := 0; c < 3; c++ {
					if err := tb.CreatePartialIndex(c, index.IntRange(1, 200)); err != nil {
						b.Fatal(err)
					}
				}
				qrng := rand.New(rand.NewSource(42))
				b.StartTimer()
				total := 0
				const queries = 90
				for q := 0; q < queries; q++ {
					// Skewed mix: column A gets most of the misses.
					col := 0
					switch {
					case q%6 == 5:
						col = 2
					case q%3 == 2:
						col = 1
					}
					_, stats, err := tb.QueryEqual(col, storage.Int64Value(int64(201+qrng.Intn(1800))))
					if err != nil {
						b.Fatal(err)
					}
					total += stats.PagesRead
				}
				b.ReportMetric(float64(total)/queries, "pages/query")
			}
		})
	}
}

// BenchmarkSharedScan measures contended-miss throughput: every query
// misses the partial index and needs an indexing scan, the workload that
// serialized completely before scan sharing. goroutines=1 is the
// serialized baseline; at higher counts concurrent misses coalesce into
// shared Algorithm-1 passes, reported as scans_saved_%. The tight
// SpaceLimit keeps the buffer from covering the table (misses stay
// expensive) and the small pool plus simulated read latency keeps scans
// device-bound, as in the paper's table >> memory setup.
func BenchmarkSharedScan(b *testing.B) {
	const (
		rows      = 3000
		keyDomain = 1000
		covered   = 50
	)
	for _, g := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			db := MustOpen(Options{
				Seed:           9,
				SpaceLimit:     64,
				IMax:           64,
				PartitionPages: 8,
				PoolPages:      32,
				ReadLatency:    20 * time.Microsecond,
			})
			defer db.Close()
			tb, err := db.CreateTable("data", Int64Column("k"), StringColumn("pad"))
			if err != nil {
				b.Fatal(err)
			}
			pad := strings.Repeat("s", 220)
			for i := 0; i < rows; i++ {
				if _, err := tb.Insert(int64(i%keyDomain), pad); err != nil {
					b.Fatal(err)
				}
			}
			if err := tb.CreatePartialRangeIndex("k", 0, covered-1); err != nil {
				b.Fatal(err)
			}

			before := db.SharedScanStats()
			per := b.N / g
			if per == 0 {
				per = 1
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						key := int64(covered + (w*per+i)%(keyDomain-covered))
						if _, _, err := tb.Query("k", key); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			s := db.SharedScanStats()
			if misses := s.Misses - before.Misses; misses > 0 {
				scans := s.Scans - before.Scans
				b.ReportMetric(float64(misses-scans)*100/float64(misses), "scans_saved_%")
			}
		})
	}
}

// BenchmarkParallelScan measures parallel table-scan execution on the
// Fig. 6 miss workload: every query misses the partial index and pays an
// indexing scan, which the parallel path splits across a worker pool.
// serial (parallelism=1) is the baseline; parallel uses 4 workers. The
// uncontended pair isolates single-scan speedup, the contended pair runs
// 4 client goroutines so parallel workers compose with scan-sharing
// admission. Simulated read latency makes scans device-bound — worker
// sleeps overlap even on one core, so the speedup shows on any runner.
func BenchmarkParallelScan(b *testing.B) {
	for _, c := range []struct {
		name        string
		parallelism int
		goroutines  int
	}{
		{"serial/uncontended", 1, 1},
		{"parallel/uncontended", 4, 1},
		{"serial/contended", 1, 4},
		{"parallel/contended", 4, 4},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunParallelScan(bench.ParallelScanOptions{
					Options: bench.Options{
						Rows:            3000,
						Queries:         12,
						Seed:            5,
						PoolPages:       64,
						ReadLatency:     100 * time.Microsecond,
						ScanParallelism: c.parallelism,
					},
					Goroutines: c.goroutines,
				})
				if err != nil {
					b.Fatal(err)
				}
				if r.ParallelScans > 0 {
					b.ReportMetric(float64(r.Workers)/float64(r.ParallelScans), "workers/scan")
				}
			}
		})
	}
}

// BenchmarkChurn runs the mixed query/DML extension experiment,
// reporting the second-half query cost — the buffer's benefit surviving
// Table I maintenance churn.
func BenchmarkChurn(b *testing.B) {
	var late float64
	for i := 0; i < b.N; i++ {
		r, err := bench.RunChurn(bench.ChurnOptions{Rows: 10000, Operations: 300})
		if err != nil {
			b.Fatal(err)
		}
		n := r.QueryPages.Len()
		late = r.QueryPages.MeanRange(n/2, n)
	}
	b.ReportMetric(late, "late_pages/query")
}

// BenchmarkTraceOverhead measures the observability layer's per-query
// cost on the hot hit path. With span recording and timeline sampling
// off (the default) every instrumentation point is a single atomic load
// and the access path allocates nothing extra, so the "off" sub-benchmark
// should be within noise of the enabled ones — the overhead contract in
// DESIGN.md, "Observability" and "Adaptation timeline".
func BenchmarkTraceOverhead(b *testing.B) {
	cases := []struct {
		name                    string
		spans, timeline, flight bool
	}{
		{"off", false, false, false},
		{"spans-on", true, false, false},
		{"timeline-on", false, true, false},
		{"spans-and-timeline-on", true, true, false},
		{"flight-on", false, false, true},
		{"all-on", true, true, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			db := MustOpen(Options{})
			defer db.Close()
			tb, err := db.CreateTable("data", Int64Column("k"), StringColumn("pad"))
			if err != nil {
				b.Fatal(err)
			}
			pad := strings.Repeat("s", 220)
			for i := 0; i < 2000; i++ {
				if _, err := tb.Insert(int64(i%100), pad); err != nil {
					b.Fatal(err)
				}
			}
			// Full coverage: every query is a partial-index hit, the path
			// where instrumentation overhead would be most visible.
			if err := tb.CreatePartialRangeIndex("k", 0, 99); err != nil {
				b.Fatal(err)
			}
			db.EnableTraceEvents(tc.spans)
			db.EnableTimeline(tc.timeline)
			if tc.flight {
				// The Table.Query path has no statement boundary, so the
				// flight arms measure the Enabled+FromContext gate every
				// instrumentation point pays — the embedded-API cost.
				db.EnableFlightRecorder(time.Hour)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tb.Query("k", int64(i%100)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupCommit measures the WAL sync-policy arms under
// concurrent writers (one table per writer, simulated fsync latency):
// the batch arm's higher ops/sec and batch_factor > 1 are the
// group-commit win; the suite's acceptance gate holds the ratio to
// ≥ 2x (see internal/bench.DurabilityResult.Check).
func BenchmarkGroupCommit(b *testing.B) {
	for _, arm := range []string{"fsync-per-commit", "group-commit"} {
		b.Run(arm, func(b *testing.B) {
			var ops, factor float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunDurability(bench.Options{Queries: 40})
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range r.Arms {
					if a.Arm == arm {
						ops, factor = a.OpsPerSec, a.BatchFactor
					}
				}
			}
			b.ReportMetric(ops, "ops/sec")
			b.ReportMetric(factor, "batch_factor")
		})
	}
}
