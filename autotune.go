package repro

import (
	"repro/internal/adapt"
	"repro/internal/storage"
)

// AutoTunePolicy configures the online adaptation controller; zero
// fields take sensible defaults (window 64, miss rate 0.7, bucket width
// 1000, top 4 regions). See internal/adapt for the control loop.
type AutoTunePolicy struct {
	// Window is the number of recent queries monitored.
	Window int
	// MissRate trips adaptation when the miss fraction over the window
	// reaches it.
	MissRate float64
	// MinGap is the minimum number of queries between adaptations.
	MinGap int
	// BucketWidth groups integer keys when choosing new coverage.
	BucketWidth int64
	// TopK is how many hot regions (or string values) to cover.
	TopK int
}

// AutoTuner pairs a column's partial index with an adaptation
// controller: queries routed through it are monitored, and a sustained
// workload shift redefines the index — the slow disk-side loop that the
// column's Index Buffer bridges in the meantime. This is the paper's
// complete "self-tuned adaptive partial indexing" stack (§VII).
type AutoTuner struct {
	table *Table
	ctrl  *adapt.Controller
}

// AutoTune attaches an adaptation controller to the column, which must
// already carry a partial index.
func (t *Table) AutoTune(column string, p AutoTunePolicy) (*AutoTuner, error) {
	i, err := t.columnIndex(column)
	if err != nil {
		return nil, err
	}
	ctrl, err := adapt.New(t.t, i, adapt.Policy{
		Window:      p.Window,
		MissRate:    p.MissRate,
		MinGap:      p.MinGap,
		BucketWidth: p.BucketWidth,
		TopK:        p.TopK,
	})
	if err != nil {
		return nil, err
	}
	return &AutoTuner{table: t, ctrl: ctrl}, nil
}

// Query answers column = key, feeds the observation to the controller,
// and reports whether this query triggered an index redefinition.
func (a *AutoTuner) Query(key any) (rows []Row, stats QueryStats, adapted bool, err error) {
	kv, err := toValue(key)
	if err != nil {
		return nil, QueryStats{}, false, err
	}
	matches, stats, adapted, err := a.ctrl.Query(kv)
	if err != nil {
		return nil, stats, false, err
	}
	rows = make([]Row, len(matches))
	for j, m := range matches {
		vals := make([]storage.Value, a.table.schema.NumColumns())
		for c := range vals {
			vals[c] = m.Tuple.Value(c)
		}
		rows[j] = Row{RID: m.RID, values: vals, schema: a.table.schema}
	}
	return rows, stats, adapted, nil
}

// Adaptations returns how many times the controller has redefined the
// index.
func (a *AutoTuner) Adaptations() int { return int(a.ctrl.Stats().Adaptations) }
