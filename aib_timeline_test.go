package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/timeline"
)

// TestTimelineFacadeAndReplay is the acceptance test for the adaptation
// timeline: a miss-heavy workload converges to the coverage target, and
// the JSONL telemetry export replays to exactly the curve the live
// Timeline() API reports.
func TestTimelineFacadeAndReplay(t *testing.T) {
	db := MustOpen(Options{})
	defer db.Close()
	tb, err := db.CreateTable("t", Int64Column("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := tb.Insert(int64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("a", 0, 9); err != nil {
		t.Fatal(err)
	}

	var export bytes.Buffer
	db.EnableTelemetrySink(&export)

	// Uncovered draws, as in the paper's experiment 1: each miss indexes
	// more pages until the whole table is covered.
	for q := 0; q < 40; q++ {
		if _, _, err := tb.Query("a", int64(10+q%90)); err != nil {
			t.Fatal(err)
		}
	}

	convs := db.Convergence()
	if len(convs) != 1 {
		t.Fatalf("convergence verdicts = %d, want 1", len(convs))
	}
	c := convs[0]
	if !c.Achieved {
		t.Fatalf("workload did not converge: %+v", c)
	}
	if c.QueriesToTarget == 0 || c.QueriesToTarget > 40 {
		t.Errorf("queries-to-target = %d", c.QueriesToTarget)
	}

	// Live curve: (query ordinal -> coverage) from the retained series.
	live := map[uint64]float64{}
	series := db.Timeline()
	if len(series) != 1 || series[0].Buffer != "t.a" {
		t.Fatalf("series = %+v", series)
	}
	for _, sm := range series[0].Samples {
		if sm.Event == timeline.EventQuery {
			live[sm.Query] = sm.Coverage
		}
	}

	// Replayed curve from the JSONL export.
	st := db.TelemetryStats()
	if st.Errors != 0 || st.Lines == 0 {
		t.Fatalf("telemetry stats = %+v", st)
	}
	replayed := map[uint64]float64{}
	spans := 0
	n, err := timeline.ScanRecords(bytes.NewReader(export.Bytes()),
		func(rec timeline.SampleRecord) error {
			if rec.Buffer != "t.a" {
				return fmt.Errorf("unexpected buffer %q", rec.Buffer)
			}
			if rec.Event == timeline.EventQuery {
				replayed[rec.Query] = rec.Coverage
			}
			return nil
		},
		func(rec timeline.SpanRecord) error { spans++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != st.Lines {
		t.Errorf("decoded %d records, sink wrote %d", n, st.Lines)
	}
	if spans == 0 {
		t.Error("export contains no spans despite indexing scans")
	}

	if len(replayed) != 40 {
		t.Fatalf("replayed %d query samples, want 40", len(replayed))
	}
	if len(live) != len(replayed) {
		t.Fatalf("live curve has %d points, replay %d", len(live), len(replayed))
	}
	for q, cov := range live {
		got, ok := replayed[q]
		if !ok || got != cov {
			t.Errorf("curve diverges at query %d: live %g, replay %v", q, cov, got)
		}
	}

	// The replayed curve must itself show convergence at the target.
	crossed := uint64(0)
	for q := uint64(1); q <= 40; q++ {
		if replayed[q] >= c.Target {
			crossed = q
			break
		}
	}
	if crossed != c.QueriesToTarget {
		t.Errorf("replayed crossing at query %d, detector says %d", crossed, c.QueriesToTarget)
	}

	// Detach: stats freeze, recording continues.
	db.EnableTelemetrySink(nil)
	if _, _, err := tb.Query("a", 55); err != nil {
		t.Fatal(err)
	}
	if db.TelemetryStats() != (TelemetryStats{}) {
		t.Errorf("stats after detach = %+v", db.TelemetryStats())
	}
	if got := db.Convergence()[0].Queries; got != 41 {
		t.Errorf("recording stopped after detach: %d queries", got)
	}
}

// TestTimelineDisabledFacade pins the default-off contract at the
// facade: no samples, no verdicts, zero-value telemetry stats.
func TestTimelineDisabledFacade(t *testing.T) {
	db := newObsDB(t)
	defer db.Close()
	if got := db.Timeline(); len(got) != 0 {
		t.Errorf("Timeline() = %d series while disabled", len(got))
	}
	if got := db.Convergence(); len(got) != 0 {
		t.Errorf("Convergence() = %d verdicts while disabled", len(got))
	}
	if db.TelemetryStats() != (TelemetryStats{}) {
		t.Errorf("TelemetryStats() = %+v without a sink", db.TelemetryStats())
	}
}
