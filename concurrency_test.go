package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestConcurrentStress mixes queries, inserts, updates and index
// redefinitions from many goroutines over two shared tables, then checks
// the paper's counter invariant (C[p] >= 0 for every page) and result
// correctness against a serial full-scan oracle. Run with -race; the
// engine must make concurrent progress without an engine-wide lock.
func TestConcurrentStress(t *testing.T) {
	const (
		keyDomain  = 50
		seedRows   = 400
		readers    = 4
		writerOps  = 300
		readerOps  = 400
		redefineOp = 40
	)
	db := MustOpen(Options{IMax: 40, PartitionPages: 16, SpaceLimit: 4000, Seed: 7})
	defer db.Close()

	mkTable := func(name string) *Table {
		tb, err := db.CreateTable(name, Int64Column("k"), Int64Column("v"), StringColumn("pad"))
		if err != nil {
			t.Fatalf("CreateTable %s: %v", name, err)
		}
		for i := 0; i < seedRows; i++ {
			if _, err := tb.Insert(int64(i%keyDomain), int64(i), fmt.Sprintf("pad-%04d-%032d", i, i)); err != nil {
				t.Fatalf("seed insert: %v", err)
			}
		}
		if err := tb.CreatePartialRangeIndex("k", 0, keyDomain/4); err != nil {
			t.Fatalf("index: %v", err)
		}
		return tb
	}
	tables := []*Table{mkTable("alpha"), mkTable("beta")}

	var wg sync.WaitGroup
	var inserted atomic.Int64
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Readers: every returned row must actually satisfy the predicate —
	// a torn scan or a displacement race would surface as a stray value.
	for g := 0; g < readers; g++ {
		for ti, tb := range tables {
			wg.Add(1)
			go func(g, ti int, tb *Table) {
				defer wg.Done()
				for i := 0; i < readerOps; i++ {
					key := int64((g*31 + i) % keyDomain)
					rows, _, err := tb.Query("k", key)
					if err != nil {
						report(fmt.Errorf("Query: %w", err))
						return
					}
					for _, r := range rows {
						got, err := r.Int64("k")
						if err != nil {
							report(err)
							return
						}
						if got != key {
							report(fmt.Errorf("Query(k=%d) returned row with k=%d", key, got))
							return
						}
					}
					if i%5 == 0 {
						lo := key
						hi := key + 3
						rows, _, err := tb.QueryRange("k", lo, hi)
						if err != nil {
							report(fmt.Errorf("QueryRange: %w", err))
							return
						}
						for _, r := range rows {
							got, _ := r.Int64("k")
							if got < lo || got > hi {
								report(fmt.Errorf("QueryRange[%d,%d] returned k=%d", lo, hi, got))
								return
							}
						}
					}
				}
			}(g, ti, tb)
		}
	}

	// Writers: one per table, owning the RIDs it creates so updates never
	// race on relocated rows.
	for _, tb := range tables {
		wg.Add(1)
		go func(tb *Table) {
			defer wg.Done()
			var mine []RID
			for i := 0; i < writerOps; i++ {
				if i%3 != 2 || len(mine) == 0 {
					rid, err := tb.Insert(int64(i%keyDomain), int64(1000+i), fmt.Sprintf("w-%04d-%032d", i, i))
					if err != nil {
						report(fmt.Errorf("Insert: %w", err))
						return
					}
					mine = append(mine, rid)
					inserted.Add(1)
				} else {
					j := i % len(mine)
					rid, err := tb.Update(mine[j], int64((i*7)%keyDomain), int64(2000+i), fmt.Sprintf("u-%04d-%032d", i, i))
					if err != nil {
						report(fmt.Errorf("Update: %w", err))
						return
					}
					mine[j] = rid
				}
			}
		}(tb)
	}

	// Adversary: periodically redefines each table's index coverage — the
	// buffer-discarding DDL path — while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < redefineOp; i++ {
			tb := tables[i%len(tables)]
			lo := (i * 3) % keyDomain
			hi := lo + keyDomain/4
			if err := tb.RedefineRangeIndex("k", lo, hi); err != nil {
				report(fmt.Errorf("RedefineRangeIndex: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Invariant: C[p] >= 0 on every page of every buffer, and the Space
	// budget equals the sum of the buffers' entries.
	total := 0
	for _, b := range db.eng.Space().Buffers() {
		for p := 0; p < b.NumPages(); p++ {
			if c := b.Uncovered(storage.PageID(p)); c < 0 {
				t.Fatalf("buffer %s: uncovered[%d] = %d < 0", b.Name(), p, c)
			}
		}
		total += b.EntryCount()
	}
	if used := db.eng.Space().Used(); used != total {
		t.Fatalf("Space.Used() = %d, buffers hold %d entries", used, total)
	}

	// Serial oracle: after quiescing, every key's query result must match
	// a raw full scan exactly.
	for _, tb := range tables {
		oracle := make(map[int64]int)
		live := 0
		err := tb.t.Scan(func(_ storage.RID, tu storage.Tuple) error {
			oracle[tu.Value(0).Int64()]++
			live++
			return nil
		})
		if err != nil {
			t.Fatalf("oracle scan: %v", err)
		}
		for k := int64(0); k < keyDomain; k++ {
			rows, _, err := tb.Query("k", k)
			if err != nil {
				t.Fatalf("oracle query: %v", err)
			}
			if len(rows) != oracle[k] {
				t.Fatalf("table %s key %d: query returned %d rows, oracle has %d", tb.t.Name(), k, len(rows), oracle[k])
			}
		}
		count, err := tb.Count()
		if err != nil {
			t.Fatalf("Count: %v", err)
		}
		if count != live {
			t.Fatalf("Count() = %d, oracle scanned %d", count, live)
		}
	}
}

// TestConcurrentHitQueriesMakeProgress runs index-covered reads on two
// tables from many goroutines; under the old engine-wide exclusive lock
// this still worked but serialized, and under the new scheme it must not
// deadlock nor return wrong rows. (Throughput scaling is measured by
// BenchmarkParallelQuery.)
func TestConcurrentHitQueriesMakeProgress(t *testing.T) {
	db := MustOpen(Options{Seed: 11})
	defer db.Close()
	var tabs []*Table
	for _, name := range []string{"t0", "t1"} {
		tb, err := db.CreateTable(name, Int64Column("k"), StringColumn("pad"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := tb.Insert(int64(i%100), fmt.Sprintf("p-%03d-%048d", i, i)); err != nil {
				t.Fatal(err)
			}
		}
		// Full coverage: every query is a partial-index hit.
		if err := tb.CreatePartialRangeIndex("k", 0, 100); err != nil {
			t.Fatal(err)
		}
		tabs = append(tabs, tb)
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tb := tabs[g%2]
			for i := 0; i < 300; i++ {
				key := int64((g + i) % 100)
				rows, stats, err := tb.Query("k", key)
				if err != nil || !stats.PartialHit || len(rows) != 5 {
					bad.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d goroutines saw a miss, error, or wrong row count on a fully covered workload", bad.Load())
	}
}

// TestQueryCtxCancel verifies that a canceled context aborts the
// page-at-a-time scan paths with ctx.Err, and that a live context leaves
// queries untouched.
func TestQueryCtxCancel(t *testing.T) {
	db := MustOpen(Options{Seed: 2})
	defer db.Close()
	tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tb.Insert(int64(i), fmt.Sprintf("pad-%051d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, 10); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Indexing scan (miss with a buffer): canceled before the first page.
	if _, _, err := tb.QueryCtx(ctx, "k", int64(250)); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := tb.QueryRangeCtx(ctx, "k", int64(50), int64(60)); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryRangeCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	// Hit path completes regardless: a handful of page fetches.
	if _, stats, err := tb.QueryCtx(ctx, "k", int64(5)); err != nil || !stats.PartialHit {
		t.Fatalf("QueryCtx hit on canceled ctx: err = %v, hit = %v", err, stats.PartialHit)
	}
	// Live context: both paths work.
	if _, _, err := tb.QueryCtx(context.Background(), "k", int64(250)); err != nil {
		t.Fatalf("QueryCtx live: %v", err)
	}

	// Full-scan path (no index buffer at all).
	db2 := MustOpen(Options{DisableIndexBuffer: true})
	defer db2.Close()
	tb2, err := db2.CreateTable("t", Int64Column("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Insert(int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb2.QueryCtx(ctx, "k", int64(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("full-scan QueryCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSharedScanBurst fires a burst of uncovered-key queries — the
// workload the Adaptive Index Buffer exists to accelerate, and the one
// that serialized hardest before scan sharing — from 8 goroutines on one
// table, and asserts both correctness (every query gets exactly its
// rows) and coalescing (the metrics counters prove fewer indexing scans
// ran than miss queries arrived). The small SpaceLimit keeps the buffer
// from ever covering the table, so every query stays a genuine miss; the
// simulated read latency keeps scans long enough that concurrent misses
// reliably overlap. Run with -race.
func TestSharedScanBurst(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5
		rowsPerKey = 3
	)
	// PoolPages is far below the table size so every scan stays
	// device-bound: ReadLatency then gives each pass a real duration for
	// concurrent misses to pile up against.
	db := MustOpen(Options{
		Seed:           5,
		SpaceLimit:     40,
		IMax:           40,
		PartitionPages: 8,
		PoolPages:      16,
		ReadLatency:    200 * time.Microsecond,
	})
	defer db.Close()
	tb, err := db.CreateTable("t", Int64Column("k"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200*rowsPerKey; i++ {
		if _, err := tb.Insert(int64(i%200), fmt.Sprintf("pad-%04d-%0700d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.CreatePartialRangeIndex("k", 0, 19); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < perG; r++ {
				key := int64(20 + g*perG + r) // distinct uncovered keys
				rows, _, err := tb.Query("k", key)
				if err != nil {
					errCh <- fmt.Errorf("Query(k=%d): %w", key, err)
					return
				}
				if len(rows) != rowsPerKey {
					errCh <- fmt.Errorf("Query(k=%d): %d rows, want %d", key, len(rows), rowsPerKey)
					return
				}
				for _, row := range rows {
					if got, _ := row.Int64("k"); got != key {
						errCh <- fmt.Errorf("Query(k=%d) returned row with k=%d", key, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	s := db.SharedScanStats()
	if s.Misses != goroutines*perG {
		t.Fatalf("Misses = %d, want %d (every query an uncovered miss)", s.Misses, goroutines*perG)
	}
	if s.Scans >= s.Misses {
		t.Errorf("Scans = %d for %d misses: no coalescing happened", s.Scans, s.Misses)
	}
	if s.Saved == 0 || s.Attached == 0 {
		t.Errorf("stats = %+v: expected attached queries and saved scans", s)
	}
}

// TestSentinelErrors exercises the typed error surface via errors.Is.
func TestSentinelErrors(t *testing.T) {
	db := MustOpen(Options{})
	tb, err := db.CreateTable("t", Int64Column("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Int64Column("k")); !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("duplicate table: %v", err)
	}
	if _, _, err := tb.Query("nope", int64(1)); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("query unknown column: %v", err)
	}
	if err := tb.RedefineRangeIndex("k", 0, 1); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("redefine without index: %v", err)
	}
	if err := tb.CreatePartialRangeIndex("k", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreatePartialRangeIndex("k", 2, 3); !errors.Is(err, ErrDuplicateIndex) {
		t.Fatalf("duplicate index: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Query("k", int64(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v", err)
	}
	if _, err := tb.Insert(int64(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if _, err := db.CreateTable("u", Int64Column("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("create table after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestOpenValidation rejects garbage options.
func TestOpenValidation(t *testing.T) {
	bad := []Options{
		{IMax: -1},
		{PartitionPages: -5},
		{HistoryDepth: -2},
		{SpaceLimit: -100},
		{PoolPages: -1},
		{Structure: Structure(42)},
	}
	for _, o := range bad {
		if _, err := Open(o); err == nil {
			t.Fatalf("Open(%+v) accepted invalid options", o)
		}
	}
	db, err := Open(Options{})
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	db.Close()
}

// BenchmarkParallelQuery measures index-hit read throughput at
// increasing goroutine counts on a warm, fully index-covered workload —
// the path the epoch-based read path takes off the per-table RWMutex.
// The uncontended arms show reader-reader scaling; the contended arms
// run one writer goroutine inserting throughout the read phase, the
// convoy case: under the rwmutex arm (DisableEpochReadPath) every read
// queues behind every commit's exclusive section, while the epoch arm's
// hits never touch the lock. The gated version of the contended
// comparison — with a synchronous WAL charging the writer real fsync
// latency — is `aibench -epoch` (BENCH_epoch.json in CI); this
// benchmark is the quick in-memory view of the same effect.
func BenchmarkParallelQuery(b *testing.B) {
	const (
		numTables = 4
		keyDomain = 100
		rows      = 1000
	)
	build := func(b *testing.B, disableEpoch bool) (*DB, []*Table) {
		db := MustOpen(Options{Seed: 1, PoolPages: 4096, DisableEpochReadPath: disableEpoch})
		var tabs []*Table
		for i := 0; i < numTables; i++ {
			tb, err := db.CreateTable(fmt.Sprintf("t%d", i), Int64Column("k"), StringColumn("pad"))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < rows; j++ {
				if _, err := tb.Insert(int64(j%keyDomain), fmt.Sprintf("p-%04d-%032d", j, j)); err != nil {
					b.Fatal(err)
				}
			}
			// Full coverage: every query is a partial-index hit, and the pool
			// is large enough that the working set stays resident (warm).
			if err := tb.CreatePartialRangeIndex("k", 0, keyDomain); err != nil {
				b.Fatal(err)
			}
			// Warm the pool.
			for k := 0; k < keyDomain; k++ {
				if _, _, err := tb.Query("k", int64(k)); err != nil {
					b.Fatal(err)
				}
			}
			tabs = append(tabs, tb)
		}
		return db, tabs
	}
	arms := []struct {
		name         string
		contended    bool
		disableEpoch bool
	}{
		{"uncontended/epoch", false, false},
		{"contended/epoch", true, false},
		{"contended/rwmutex", true, true},
	}
	goroutines := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		goroutines = append(goroutines, n)
	}
	for _, arm := range arms {
		db, tabs := build(b, arm.disableEpoch)
		for _, g := range goroutines {
			b.Run(fmt.Sprintf("%s/goroutines=%d", arm.name, g), func(b *testing.B) {
				b.ReportAllocs()
				var (
					stop    atomic.Bool
					writes  int64
					writeWG sync.WaitGroup
				)
				if arm.contended {
					stop.Store(false)
					writeWG.Add(1)
					go func() {
						defer writeWG.Done()
						for n := 0; !stop.Load(); n++ {
							tb := tabs[n%numTables]
							if _, err := tb.Insert(int64(n%keyDomain), "w"); err != nil {
								b.Error(err)
								return
							}
							writes++
						}
					}()
				}
				var wg sync.WaitGroup
				per := b.N / g
				if per == 0 {
					per = 1
				}
				b.ResetTimer()
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						tb := tabs[w%numTables]
						for i := 0; i < per; i++ {
							key := int64((w*17 + i) % keyDomain)
							if _, _, err := tb.Query("k", key); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				if arm.contended {
					stop.Store(true)
					writeWG.Wait()
					b.ReportMetric(float64(writes), "writer_commits")
				}
			})
		}
		db.Close()
	}
}
