package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// This file is the epoch read-path arm of the serial-oracle property
// harness (see parallel_oracle_test.go for the parallel-scan arm). The
// oracle engine runs maximally conservative — scan parallelism 1 and
// the epoch-based lock-free read path disabled, so every query goes
// through the table RWMutex — while the subject engine runs with the
// fast path enabled at parallelism 1, 2 and NumCPU. Both are driven
// through the same seeded mixed stream of queries, DML, index
// redefinitions and displacement-inducing buffer pressure, and every
// observable — result sets, query stats, the per-page counter table
// C[p] — must stay bit-identical after every operation, with the WAL
// on and off. Any divergence is a fast-path bug: a probe served from a
// stale snapshot, a side effect applied twice or not at all, a torn
// read that validated. CI runs this under -race as the epoch stress
// step.

// newEpochHarness builds one engine of the oracle pair. disableEpoch
// selects the oracle arm; wal adds a DataDir-backed write-ahead log so
// DML commits through the group-commit path the fast path is meant to
// overlap with.
func newEpochHarness(t *testing.T, parallelism int, disableEpoch, wal bool, rows, keyDomain, covered int) *oracleHarness {
	t.Helper()
	o := Options{
		IMax:                 60,
		PartitionPages:       8,
		SpaceLimit:           220, // tight: steady displacement under the stream below
		PoolPages:            48,
		Seed:                 11,
		ScanParallelism:      parallelism,
		DisableEpochReadPath: disableEpoch,
	}
	if wal {
		o.DataDir = t.TempDir()
	} else {
		o.WAL.Disable = true
	}
	db := MustOpen(o)
	t.Cleanup(func() { db.Close() })
	tb, err := db.CreateTable("data", Int64Column("k"), Int64Column("v"), StringColumn("pad"))
	if err != nil {
		t.Fatal(err)
	}
	h := &oracleHarness{db: db, tb: tb}
	for i := 0; i < rows; i++ {
		rid, err := tb.Insert(int64(i%keyDomain), int64(i), fmt.Sprintf("pad-%04d-%0160d", i, i))
		if err != nil {
			t.Fatal(err)
		}
		h.rids = append(h.rids, rid)
	}
	if err := tb.CreatePartialRangeIndex("k", 0, covered-1); err != nil {
		t.Fatal(err)
	}
	return h
}

// drainEpochs asserts the harness's epoch domain is healthy at rest: no
// pinned readers, and the retired-snapshot backlog drains to zero within
// a few opportunistic advances (each EpochStats call advances once).
func drainEpochs(t *testing.T, h *oracleHarness) {
	t.Helper()
	var es EpochStats
	for i := 0; i < 8; i++ {
		es = h.db.EpochStats()
		if es.RetiredBacklog == 0 {
			break
		}
	}
	if es.PinnedReaders != 0 {
		t.Errorf("quiescent engine reports %d pinned readers, want 0", es.PinnedReaders)
	}
	if es.RetiredBacklog != 0 {
		t.Errorf("retired-snapshot backlog stuck at %d after advances (lag %d epochs)",
			es.RetiredBacklog, es.ReclamationLag)
	}
}

// TestEpochSerialOracleBattery drives the locked oracle and the
// lock-free subject through the same seeded mixed stream and checks
// identity after every operation, at subject parallelism 1, 2 and
// NumCPU, with the WAL off and on. The covered fraction is large enough
// that a healthy subject serves a meaningful share of the stream on the
// fast path — asserted at the end, alongside epoch-domain hygiene.
func TestEpochSerialOracleBattery(t *testing.T) {
	const (
		rows      = 400
		keyDomain = 40
		covered   = 14
		ops       = 220
	)
	levels := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	for _, wal := range []bool{false, true} {
		for _, par := range levels {
			t.Run(fmt.Sprintf("wal=%v/parallelism=%d", wal, par), func(t *testing.T) {
				oracle := newEpochHarness(t, 1, true, wal, rows, keyDomain, covered)
				subject := newEpochHarness(t, par, false, wal, rows, keyDomain, covered)
				rng := rand.New(rand.NewSource(1234))
				nextRow := rows
				coveredLo, coveredHi := 0, covered-1
				for i := 0; i < ops; i++ {
					var op string
					switch c := rng.Intn(20); {
					case c < 7: // equality query on a covered key: the fast path's case
						k := int64(coveredLo + rng.Intn(coveredHi-coveredLo+1))
						op = fmt.Sprintf("op %d: covered query k=%d", i, k)
						sr, ss, se := oracle.tb.Query("k", k)
						pr, ps, pe := subject.tb.Query("k", k)
						diffQuery(t, op, sr, pr, ss, ps, se, pe)
					case c < 11: // equality query over the full domain (misses scan+displace)
						k := int64(rng.Intn(keyDomain))
						op = fmt.Sprintf("op %d: query k=%d", i, k)
						sr, ss, se := oracle.tb.Query("k", k)
						pr, ps, pe := subject.tb.Query("k", k)
						diffQuery(t, op, sr, pr, ss, ps, se, pe)
					case c < 13: // range query, sometimes covered, sometimes empty
						lo := int64(rng.Intn(keyDomain))
						hi := lo + int64(rng.Intn(keyDomain/4)) - 1
						op = fmt.Sprintf("op %d: range [%d,%d]", i, lo, hi)
						sr, ss, se := oracle.tb.QueryRange("k", lo, hi)
						pr, ps, pe := subject.tb.QueryRange("k", lo, hi)
						diffQuery(t, op, sr, pr, ss, ps, se, pe)
					case c < 16: // insert
						k := int64(rng.Intn(keyDomain))
						op = fmt.Sprintf("op %d: insert k=%d", i, k)
						sr, se := oracle.tb.Insert(k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
						pr, pe := subject.tb.Insert(k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
						nextRow++
						if se != nil || pe != nil || sr != pr {
							t.Fatalf("%s: oracle (%v, %v), subject (%v, %v)", op, sr, se, pr, pe)
						}
						oracle.rids = append(oracle.rids, sr)
						subject.rids = append(subject.rids, pr)
					case c < 17: // delete a random live row
						if len(oracle.rids) == 0 {
							continue
						}
						j := rng.Intn(len(oracle.rids))
						op = fmt.Sprintf("op %d: delete %v", i, oracle.rids[j])
						se := oracle.tb.Delete(oracle.rids[j])
						pe := subject.tb.Delete(subject.rids[j])
						if se != nil || pe != nil {
							t.Fatalf("%s: oracle %v, subject %v", op, se, pe)
						}
						oracle.rids = append(oracle.rids[:j], oracle.rids[j+1:]...)
						subject.rids = append(subject.rids[:j], subject.rids[j+1:]...)
					case c < 19: // update a random live row to a new key
						if len(oracle.rids) == 0 {
							continue
						}
						j := rng.Intn(len(oracle.rids))
						k := int64(rng.Intn(keyDomain))
						op = fmt.Sprintf("op %d: update %v k=%d", i, oracle.rids[j], k)
						sr, se := oracle.tb.Update(oracle.rids[j], k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
						pr, pe := subject.tb.Update(subject.rids[j], k, int64(nextRow), fmt.Sprintf("pad-%04d-%0160d", nextRow, nextRow))
						nextRow++
						if se != nil || pe != nil || sr != pr {
							t.Fatalf("%s: oracle (%v, %v), subject (%v, %v)", op, sr, se, pr, pe)
						}
						oracle.rids[j], subject.rids[j] = sr, pr
					default: // redefine the index: DDL republication under the fast path
						coveredLo = rng.Intn(keyDomain - covered)
						coveredHi = coveredLo + covered - 1
						op = fmt.Sprintf("op %d: redefine [%d,%d]", i, coveredLo, coveredHi)
						se := oracle.tb.RedefineRangeIndex("k", coveredLo, coveredHi)
						pe := subject.tb.RedefineRangeIndex("k", coveredLo, coveredHi)
						if se != nil || pe != nil {
							t.Fatalf("%s: oracle %v, subject %v", op, se, pe)
						}
					}
					diffCounters(t, op, oracle, subject)
				}

				// The subject actually exercised the lock-free path.
				oes, ses := oracle.db.EpochStats(), subject.db.EpochStats()
				if oes.FastHits != 0 {
					t.Errorf("oracle (fast path disabled) recorded %d fast hits", oes.FastHits)
				}
				if ses.FastHits == 0 {
					t.Error("subject recorded zero fast hits; the battery never exercised the lock-free path")
				}
				drainEpochs(t, oracle)
				drainEpochs(t, subject)
			})
		}
	}
}
