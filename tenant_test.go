package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOptionsValidateTenants(t *testing.T) {
	cases := []struct {
		name    string
		tenants []Tenant
		wantErr string
	}{
		{"none", nil, ""},
		{"two tenants", []Tenant{{Name: "a", Quota: 10}, {Name: "b", Strict: true}}, ""},
		{"empty name", []Tenant{{Name: ""}}, "empty tenant name"},
		{"negative quota", []Tenant{{Name: "a", Quota: -1}}, "negative"},
		{"duplicate", []Tenant{{Name: "a"}, {Name: "a", Quota: 5}}, "duplicate tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(Options{Tenants: tc.tenants})
			if err == nil {
				db.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Open failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Open err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestExecFrontDoor(t *testing.T) {
	db := MustOpen(Options{})
	defer db.Close()
	ctx := context.Background()

	for _, stmt := range []string{
		"CREATE TABLE t (a INT, b VARCHAR)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two'), (2, 'more')",
		"CREATE PARTIAL INDEX ON t (a) COVERING 1 TO 1",
	} {
		if _, err := db.Exec(ctx, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	res, err := db.Exec(ctx, "SELECT * FROM t WHERE a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 || res.Stats == nil || !strings.Contains(res.Output, "two") {
		t.Fatalf("select result: %+v", res)
	}
	if res, err := db.Exec(ctx, "EXIT"); err != nil || !res.Quit {
		t.Fatalf("EXIT = %+v, %v", res, err)
	}
	if _, err := db.Exec(ctx, "SELECT * FROM missing WHERE a = 1"); err == nil {
		t.Fatal("query on a missing table succeeded")
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Exec(canceled, "SELECT * FROM t WHERE a = 2"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Exec err = %v, want context.Canceled", err)
	}
}

func TestSessionTenantScope(t *testing.T) {
	db := MustOpen(Options{Tenants: []Tenant{{Name: "acme"}, {Name: "beta"}}})
	defer db.Close()
	ctx := context.Background()

	if _, err := db.Session("ghost"); !errors.Is(err, ErrTenantUnknown) {
		t.Fatalf("Session(ghost) err = %v, want ErrTenantUnknown", err)
	}
	acme, err := db.Session("acme")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := db.Session("beta")
	if err != nil {
		t.Fatal(err)
	}
	if acme.Tenant() != "acme" {
		t.Errorf("Tenant() = %q", acme.Tenant())
	}

	// The same table name in three namespaces, without collision.
	for _, exec := range []func(context.Context, string) (ExecResult, error){
		db.Exec, acme.Exec, beta.Exec,
	} {
		if _, err := exec(ctx, "CREATE TABLE t (a INT, b VARCHAR)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := acme.Exec(ctx, "INSERT INTO t VALUES (1, 'acme-row')"); err != nil {
		t.Fatal(err)
	}
	res, err := acme.Exec(ctx, "SELECT * FROM t WHERE a = 1")
	if err != nil || res.Rows != 1 {
		t.Fatalf("acme select: %+v, %v", res, err)
	}
	res, err = beta.Exec(ctx, "SELECT * FROM t WHERE a = 1")
	if err != nil || res.Rows != 0 {
		t.Fatalf("beta sees acme's rows: %+v, %v", res, err)
	}

	// CreateTenant after Open.
	if err := db.CreateTenant(Tenant{Name: "late", Quota: 7}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTenant(Tenant{Name: "late"}); err == nil {
		t.Error("duplicate late tenant accepted")
	}
	if _, err := db.Session("late"); err != nil {
		t.Errorf("Session(late) after CreateTenant: %v", err)
	}
}

// fillTenantTable creates t(a INT, payload VARCHAR) with rows rows over
// [1, domain] and a partial index covering [1, covered], via Exec.
func fillTenantTable(t *testing.T, exec func(context.Context, string) (ExecResult, error), rows, domain, covered int) {
	t.Helper()
	ctx := context.Background()
	if _, err := exec(ctx, "CREATE TABLE t (a INT, payload VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200)
	const batch = 100
	for lo := 0; lo < rows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO t VALUES ")
		for i := lo; i < lo+batch && i < rows; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", i%domain+1, pad)
		}
		if _, err := exec(ctx, sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	stmt := fmt.Sprintf("CREATE PARTIAL INDEX ON t (a) COVERING 1 TO %d", covered)
	if _, err := exec(ctx, stmt); err != nil {
		t.Fatal(err)
	}
}

func TestTenantQuotaDegradeAndStats(t *testing.T) {
	db := MustOpen(Options{SpaceLimit: 10000,
		Tenants: []Tenant{{Name: "tiny", Quota: 3}}})
	defer db.Close()
	sess, err := db.Session("tiny")
	if err != nil {
		t.Fatal(err)
	}
	fillTenantTable(t, sess.Exec, 200, 50, 5)

	ctx := context.Background()
	sawDegraded := false
	for k := 6; k <= 50; k++ {
		res, err := sess.Exec(ctx, fmt.Sprintf("SELECT * FROM t WHERE a = %d", k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Stats != nil && res.Stats.QuotaDegraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("tiny tenant never degraded")
	}
	stats := db.TenantStats()
	if len(stats) != 1 || stats[0].Name != "tiny" {
		t.Fatalf("TenantStats = %+v", stats)
	}
	ts := stats[0]
	if ts.Quota != 3 || ts.Strict {
		t.Errorf("ledger config: %+v", ts)
	}
	if ts.Used > ts.Quota {
		t.Errorf("used %d > quota %d", ts.Used, ts.Quota)
	}
	if ts.Degraded == 0 {
		t.Error("ledger Degraded = 0 despite degraded scans")
	}
}

func TestStrictTenantQuotaError(t *testing.T) {
	db := MustOpen(Options{SpaceLimit: 10000,
		Tenants: []Tenant{{Name: "hard", Quota: 3, Strict: true}}})
	defer db.Close()
	sess, err := db.Session("hard")
	if err != nil {
		t.Fatal(err)
	}
	fillTenantTable(t, sess.Exec, 200, 50, 5)

	ctx := context.Background()
	var quotaErr error
	for k := 6; k <= 50; k++ {
		if _, err := sess.Exec(ctx, fmt.Sprintf("SELECT * FROM t WHERE a = %d", k)); err != nil {
			quotaErr = err
			break
		}
	}
	if !errors.Is(quotaErr, ErrQuotaExceeded) {
		t.Fatalf("strict tenant err = %v, want ErrQuotaExceeded", quotaErr)
	}
}

// TestTimelineTenantFilter drives two tenants, then checks the
// /timeline endpoint's ?tenant= filter over the qualified table names.
func TestTimelineTenantFilter(t *testing.T) {
	db := MustOpen(Options{Tenants: []Tenant{{Name: "acme"}}})
	defer db.Close()
	db.EnableTimeline(true)

	acme, err := db.Session("acme")
	if err != nil {
		t.Fatal(err)
	}
	fillTenantTable(t, acme.Exec, 100, 20, 5)
	fillTenantTable(t, db.Exec, 100, 20, 5) // default tenant, same table name

	ctx := context.Background()
	for k := 6; k <= 15; k++ {
		stmt := fmt.Sprintf("SELECT * FROM t WHERE a = %d", k)
		if _, err := acme.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}

	h := db.MetricsHandler()
	get := func(url string) struct {
		Series []struct {
			Table  string `json:"table"`
			Column string `json:"column"`
		} `json:"series"`
	} {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", url, rec.Code)
		}
		var resp struct {
			Series []struct {
				Table  string `json:"table"`
				Column string `json:"column"`
			} `json:"series"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	all := get("/timeline")
	if len(all.Series) < 2 {
		t.Fatalf("unfiltered series = %d, want both tenants'", len(all.Series))
	}
	acmeOnly := get("/timeline?tenant=acme")
	if len(acmeOnly.Series) == 0 {
		t.Fatal("?tenant=acme returned nothing")
	}
	for _, s := range acmeOnly.Series {
		if !strings.HasPrefix(s.Table, "acme:") {
			t.Errorf("?tenant=acme leaked table %q", s.Table)
		}
	}
	deflt := get("/timeline?tenant=%3Cdefault%3E")
	if len(deflt.Series) == 0 {
		t.Fatal("?tenant=<default> returned nothing")
	}
	for _, s := range deflt.Series {
		if strings.Contains(s.Table, ":") {
			t.Errorf("?tenant=<default> leaked table %q", s.Table)
		}
	}
}
