// Command aibload is the load harness for aibserver: it populates one
// table per tenant over the wire, replays seeded query streams from
// many concurrent connections, and reports client-side latency
// percentiles plus the engine-side saved-scan fraction as JSON
// (BENCH_server.json).
//
// By default it runs self-contained — an in-process server over a fresh
// database — so the report includes engine-side stats and the
// per-tenant quota invariants are verified after the replay (a
// violation exits nonzero). With -addr it drives an external aibserver
// instead, reporting client-side numbers only.
//
//	$ aibload -conns 1000 -queries 50 -space 60000 \
//	    -tenants 'acme:40000,tiny:500' -out BENCH_server.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	conns := flag.Int("conns", 1000, "concurrent client connections")
	queries := flag.Int("queries", 50, "queries per connection")
	tenants := flag.String("tenants", "acme:40000,tiny:500", "tenant specs name:quota[:strict] (in-process mode); connections round-robin over them")
	rows := flag.Int("rows", 2000, "rows per tenant table")
	domain := flag.Int64("domain", 1000, "key domain [1, domain]")
	covered := flag.Int64("covered", 100, "partial-index coverage prefix [1, covered]")
	hitrate := flag.Float64("hitrate", 0.5, "fraction of queries in the covered prefix")
	payload := flag.Int("payload", 0, "pad each row's payload to this many bytes (wide rows overflow the buffer pool)")
	seed := flag.Int64("seed", 1, "base seed; per-connection streams use fixed offsets")
	space := flag.Int("space", 60000, "SpaceLimit for the in-process database (0 = unlimited)")
	workers := flag.Int("workers", 0, "server worker-pool size (in-process mode)")
	readlat := flag.Duration("readlat", 0, "simulated-disk read latency per page (in-process mode)")
	poolPages := flag.Int("poolpages", 0, "buffer-pool pages per table, 0 = engine default (in-process mode)")
	addr := flag.String("addr", "", "drive an external server at this address instead of an in-process one")
	out := flag.String("out", "", "write the JSON report here (default stdout only)")
	flag.Parse()

	cfg := server.DefaultLoadConfig()
	cfg.Conns = *conns
	cfg.QueriesPerConn = *queries
	cfg.Rows = *rows
	cfg.Domain = *domain
	cfg.Covered = *covered
	cfg.HitRate = *hitrate
	cfg.PayloadLen = *payload
	cfg.Seed = *seed

	var db *repro.DB
	target := *addr
	spaceLimit := 0
	if target == "" {
		specs, err := parseTenants(*tenants)
		if err != nil {
			fatal(err)
		}
		cfg.Tenants = tenantNames(specs)
		db, err = repro.Open(repro.Options{
			SpaceLimit:  *space,
			Tenants:     specs,
			ReadLatency: *readlat,
			PoolPages:   *poolPages,
		})
		if err != nil {
			fatal(fmt.Errorf("open: %w", err))
		}
		defer db.Close()
		spaceLimit = *space

		srv := server.New(db, server.Config{Workers: *workers})
		bound, err := srv.Start()
		if err != nil {
			fatal(fmt.Errorf("listen: %w", err))
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		target = bound.String()
		fmt.Fprintf(os.Stderr, "aibload: in-process server on %s\n", target)
	} else {
		// External servers own their tenant setup; split the flag into
		// names only so connections still round-robin correctly.
		specs, err := parseTenants(*tenants)
		if err != nil {
			fatal(err)
		}
		cfg.Tenants = tenantNames(specs)
	}

	if err := server.SetupLoad(target, cfg); err != nil {
		fatal(fmt.Errorf("setup: %w", err))
	}
	rep, err := server.RunLoad(target, cfg, db)
	if err != nil {
		fatal(fmt.Errorf("run: %w", err))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "aibload: %d conns, latency ms p50 %.2f p90 %.2f p99 %.2f max %.2f, saved-scan fraction %.3f\n",
		rep.Conns, rep.P50MS, rep.P90MS, rep.P99MS, rep.MaxMS, rep.SavedScanFraction)
	for _, tl := range rep.TenantLatency {
		fmt.Fprintf(os.Stderr, "aibload:   tenant %-12s %6d stmts, p50 %.2f p90 %.2f p99 %.2f max %.2f ms\n",
			tl.Tenant, tl.Statements, tl.P50MS, tl.P90MS, tl.P99MS, tl.MaxMS)
	}

	if db != nil {
		if violations := server.VerifyQuotas(db, spaceLimit); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "aibload: QUOTA VIOLATION:", v)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "aibload: quota invariants hold")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aibload:", err)
	os.Exit(1)
}

// parseTenants decodes "name:quota[:strict]" specs, the same syntax as
// aibserver's -tenants flag.
func parseTenants(s string) ([]repro.Tenant, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []repro.Tenant
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name:quota[:strict])", spec)
		}
		quota, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad tenant quota in %q: %v", spec, err)
		}
		t := repro.Tenant{Name: parts[0], Quota: quota}
		if len(parts) == 3 {
			if parts[2] != "strict" {
				return nil, fmt.Errorf("bad tenant modifier %q in %q (want strict)", parts[2], spec)
			}
			t.Strict = true
		}
		out = append(out, t)
	}
	return out, nil
}

func tenantNames(specs []repro.Tenant) []string {
	if len(specs) == 0 {
		return []string{""}
	}
	names := make([]string, len(specs))
	for i, t := range specs {
		names[i] = t.Name
	}
	return names
}
