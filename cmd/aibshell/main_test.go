package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
)

func open(t *testing.T, o repro.Options) *repro.DB {
	t.Helper()
	db, err := repro.Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestREPL(t *testing.T) {
	db := open(t, repro.Options{IMax: 100, PartitionPages: 50})
	in := strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT, b VARCHAR)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two')",
		"SELECT * FROM t WHERE a = 2",
		"broken command !!",
		"SHOW TABLES",
		"exit",
		"never reached",
	}, "\n"))
	var out bytes.Buffer
	repl(in, &out, db.Exec)
	got := out.String()
	for _, want := range []string{"created table t", "inserted 2 row(s)", `"two"`, "error:", "bye"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "never reached") {
		t.Error("repl did not stop at exit")
	}
}

func TestREPLEOF(t *testing.T) {
	db := open(t, repro.Options{})
	var out bytes.Buffer
	repl(strings.NewReader("HELP\n"), &out, db.Exec)
	if !strings.Contains(out.String(), "CREATE TABLE") {
		t.Error("help output missing")
	}
}

func TestREPLTenantSession(t *testing.T) {
	db := open(t, repro.Options{Tenants: []repro.Tenant{{Name: "acme"}}})
	sess, err := db.Session("acme")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	repl(strings.NewReader("CREATE TABLE t (a INT, b VARCHAR)\nSHOW TABLES\n"), &out, sess.Exec)
	if got := out.String(); !strings.Contains(got, "t") {
		t.Errorf("tenant table missing from SHOW TABLES:\n%s", got)
	}
	if db.Table("t") != nil {
		t.Error("tenant table leaked into the default namespace")
	}
}

func TestPreload(t *testing.T) {
	db := open(t, repro.Options{IMax: 2000, PartitionPages: 500})
	if err := preload(db); err != nil {
		t.Fatal(err)
	}
	tb := db.Table("flights")
	if tb == nil {
		t.Fatal("flights table missing")
	}
	n, err := tb.Count()
	if err != nil || n != 10000 {
		t.Fatalf("count = %d, %v", n, err)
	}
	res, err := db.Exec(context.Background(), "SELECT * FROM flights WHERE delay = 90")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Rows == 0 {
		t.Fatalf("uncovered query returned no rows/stats: %+v", res)
	}
}
