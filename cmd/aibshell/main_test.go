package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/shell"
)

func TestREPL(t *testing.T) {
	eng := engine.New(engine.Config{Space: core.Config{IMax: 100, P: 50}})
	in := strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT, b VARCHAR)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two')",
		"SELECT * FROM t WHERE a = 2",
		"broken command !!",
		"SHOW TABLES",
		"exit",
		"never reached",
	}, "\n"))
	var out bytes.Buffer
	repl(in, &out, shell.New(eng))
	got := out.String()
	for _, want := range []string{"created table t", "inserted 2 row(s)", `"two"`, "error:", "bye"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "never reached") {
		t.Error("repl did not stop at exit")
	}
}

func TestREPLEOF(t *testing.T) {
	eng := engine.New(engine.Config{})
	var out bytes.Buffer
	repl(strings.NewReader("HELP\n"), &out, shell.New(eng))
	if !strings.Contains(out.String(), "CREATE TABLE") {
		t.Error("help output missing")
	}
}

func TestPreload(t *testing.T) {
	eng := engine.New(engine.Config{Space: core.Config{IMax: 2000, P: 500}})
	if err := preload(eng); err != nil {
		t.Fatal(err)
	}
	tb := eng.Table("flights")
	if tb == nil {
		t.Fatal("flights table missing")
	}
	n, err := tb.Count()
	if err != nil || n != 10000 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if tb.Index(1) == nil {
		t.Error("delay index missing")
	}
}
