// Command aibshell is an interactive shell over the engine. It speaks a
// small SQL-ish language (type HELP at the prompt) and is the quickest
// way to watch the Adaptive Index Buffer work: create a table, add a
// partial index, query an uncovered value twice, and see the second
// query's pages-skipped count jump.
//
//	$ go run ./cmd/aibshell
//	aib> CREATE TABLE t (k INT, pad VARCHAR)
//	aib> INSERT INTO t VALUES (1, 'x'), (900, 'y')
//	aib> CREATE PARTIAL INDEX ON t (k) COVERING 1 TO 100
//	aib> SELECT * FROM t WHERE k = 900
//	aib> SHOW BUFFERS
//
// With -demo the shell preloads a populated flights table so there is
// something to query immediately.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shell"
	"repro/internal/storage"
)

func main() {
	demo := flag.Bool("demo", false, "preload a populated flights table")
	data := flag.String("data", "", "directory for persistent storage (reopened if a catalog exists)")
	listen := flag.String("listen", "", "serve /metrics, /timeline and /debug/pprof on this address (e.g. localhost:9090); also enables span recording and timeline sampling")
	flag.Parse()

	cfg := engine.Config{Space: core.Config{IMax: 2000, P: 500}, DataDir: *data}
	var eng *engine.Engine
	if *data != "" {
		if loaded, err := engine.Load(cfg); err == nil {
			eng = loaded
			fmt.Println("reopened database from", *data)
		}
	}
	if eng == nil {
		eng = engine.New(cfg)
	}
	defer eng.Close()
	if *listen != "" {
		srv, addr, err := obs.Serve(*listen, eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: listen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		eng.Tracer().EnableSpans(true)
		eng.Timeline().Enable(true)
		fmt.Printf("observability: http://%s/metrics, /timeline and /debug/pprof/ (SHOW TIMELINE works too)\n", addr)
	}
	if *demo {
		if err := preload(eng); err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: preload:", err)
			os.Exit(1)
		}
		fmt.Println("demo table loaded: flights(airport VARCHAR, delay INT, details VARCHAR)")
		fmt.Println("partial index on delay covering 0 TO 29; try:")
		fmt.Println("  SELECT * FROM flights WHERE delay = 90")
	}

	repl(os.Stdin, os.Stdout, shell.New(eng))
}

// repl reads commands line by line, printing results and errors, until
// EOF or an EXIT command.
func repl(in io.Reader, out io.Writer, sh *shell.Shell) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Fprint(out, "aib> ")
	for sc.Scan() {
		r, err := sh.Eval(sc.Text())
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else if r.Output != "" {
			fmt.Fprintln(out, r.Output)
		}
		if r.Quit {
			return
		}
		fmt.Fprint(out, "aib> ")
	}
}

// preload fills a flights table with 10,000 rows and a partial index on
// the delay column.
func preload(eng *engine.Engine) error {
	schema := storage.MustSchema(
		storage.Column{Name: "airport", Kind: storage.KindString},
		storage.Column{Name: "delay", Kind: storage.KindInt64},
		storage.Column{Name: "details", Kind: storage.KindString},
	)
	tb, err := eng.CreateTable("flights", schema)
	if err != nil {
		return err
	}
	airports := []string{"ORD", "JFK", "LAX", "FRA", "MUC", "HEL"}
	rng := rand.New(rand.NewSource(1))
	pad := strings.Repeat("d", 250)
	for i := 0; i < 10000; i++ {
		tu := storage.NewTuple(
			storage.StringValue(airports[rng.Intn(len(airports))]),
			storage.Int64Value(int64(rng.Intn(120))),
			storage.StringValue(pad),
		)
		if _, err := tb.Insert(tu); err != nil {
			return err
		}
	}
	sh := shell.New(eng)
	_, err = sh.Eval("CREATE PARTIAL INDEX ON flights (delay) COVERING 0 TO 29")
	return err
}
