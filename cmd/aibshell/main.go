// Command aibshell is an interactive shell over the database. It speaks
// a small SQL-ish language (type HELP at the prompt) and is the
// quickest way to watch the Adaptive Index Buffer work: create a table,
// add a partial index, query an uncovered value twice, and see the
// second query's pages-skipped count jump.
//
//	$ go run ./cmd/aibshell
//	aib> CREATE TABLE t (k INT, pad VARCHAR)
//	aib> INSERT INTO t VALUES (1, 'x'), (900, 'y')
//	aib> CREATE PARTIAL INDEX ON t (k) COVERING 1 TO 100
//	aib> SELECT * FROM t WHERE k = 900
//	aib> SHOW BUFFERS
//
// Statements run through the same repro.DB.Exec front door as
// cmd/aibserver, so everything the shell can do, the network protocol
// can too. With -demo the shell preloads a populated flights table so
// there is something to query immediately; with -tenant it runs as a
// tenant-scoped session.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro"
)

func main() {
	demo := flag.Bool("demo", false, "preload a populated flights table")
	data := flag.String("data", "", "directory for persistent storage (reopened if a catalog exists)")
	listen := flag.String("listen", "", "serve /metrics, /timeline and /debug/pprof on this address (e.g. localhost:9090); also enables span recording and timeline sampling")
	tenant := flag.String("tenant", "", "run as this tenant (registered on the fly with an unlimited quota)")
	flag.Parse()

	opts := repro.Options{IMax: 2000, PartitionPages: 500, DataDir: *data}
	var db *repro.DB
	var err error
	if *data != "" {
		if db, err = repro.OpenExisting(opts); err == nil {
			fmt.Println("reopened database from", *data)
		}
	}
	if db == nil {
		if db, err = repro.Open(opts); err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: open:", err)
			os.Exit(1)
		}
	}
	defer db.Close()
	if *listen != "" {
		srv, addr, err := db.ServeMetrics(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: listen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		db.EnableTraceEvents(true)
		db.EnableTimeline(true)
		fmt.Printf("observability: http://%s/metrics, /timeline and /debug/pprof/ (SHOW TIMELINE works too)\n", addr)
	}
	if *demo {
		if err := preload(db); err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: preload:", err)
			os.Exit(1)
		}
		fmt.Println("demo table loaded: flights(airport VARCHAR, delay INT, details VARCHAR)")
		fmt.Println("partial index on delay covering 0 TO 29; try:")
		fmt.Println("  SELECT * FROM flights WHERE delay = 90")
	}

	exec := db.Exec
	if *tenant != "" {
		if err := db.CreateTenant(repro.Tenant{Name: *tenant}); err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: tenant:", err)
			os.Exit(1)
		}
		sess, err := db.Session(*tenant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibshell: tenant:", err)
			os.Exit(1)
		}
		exec = sess.Exec
		fmt.Printf("session bound to tenant %q\n", *tenant)
	}

	repl(os.Stdin, os.Stdout, exec)
}

// repl reads statements line by line, printing results and errors,
// until EOF or an EXIT command. Every statement goes through the public
// Exec front door.
func repl(in io.Reader, out io.Writer, exec func(context.Context, string) (repro.ExecResult, error)) {
	ctx := context.Background()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Fprint(out, "aib> ")
	for sc.Scan() {
		r, err := exec(ctx, sc.Text())
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else if r.Output != "" {
			fmt.Fprintln(out, r.Output)
		}
		if r.Quit {
			return
		}
		fmt.Fprint(out, "aib> ")
	}
}

// preload fills a flights table with 10,000 rows and a partial index on
// the delay column, all through Exec.
func preload(db *repro.DB) error {
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE flights (airport VARCHAR, delay INT, details VARCHAR)"); err != nil {
		return err
	}
	airports := []string{"ORD", "JFK", "LAX", "FRA", "MUC", "HEL"}
	rng := rand.New(rand.NewSource(1))
	pad := strings.Repeat("d", 250)
	const batch = 500
	for lo := 0; lo < 10000; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO flights VALUES ")
		for i := 0; i < batch; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "('%s', %d, '%s')",
				airports[rng.Intn(len(airports))], rng.Intn(120), pad)
		}
		if _, err := db.Exec(ctx, sb.String()); err != nil {
			return err
		}
	}
	_, err := db.Exec(ctx, "CREATE PARTIAL INDEX ON flights (delay) COVERING 0 TO 29")
	return err
}
