package main

import (
	"os"
	"testing"

	"repro/internal/bench"
)

// TestRunAllFigures drives the CLI's dispatch for every figure at a tiny
// scale and every output format — the glue between flags and runners.
func TestRunAllFigures(t *testing.T) {
	// Silence stdout during the run; the CLI writes directly to it.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	opts := bench.Options{Rows: 5000, Queries: 40, Seed: 1}
	for _, fig := range []string{"6", "7", "8", "9", "bridge", "corr", "churn"} {
		for _, format := range []string{"table", "tsv", "plot"} {
			if err := run(fig, opts, format, 10); err != nil {
				t.Errorf("run(%s, %s): %v", fig, format, err)
			}
		}
	}
	// Figures 1 and 3 ignore opts; run them once.
	if err := run("1", opts, "table", 50); err != nil {
		t.Errorf("run(1): %v", err)
	}
	if err := run("3", bench.Options{}, "tsv", 1); err != nil {
		t.Errorf("run(3): %v", err)
	}
	if err := run("nope", opts, "table", 1); err == nil {
		t.Error("unknown figure should fail")
	}
}
