// Command aibench regenerates the paper's figures. Each -fig value runs
// the corresponding experiment of "Adaptive Index Buffer" (ICDEW 2012)
// and prints the per-query series as an aligned table, TSV, or an ASCII
// plot.
//
// Usage:
//
//	aibench -fig 6                 # experiment 1 (Figure 6), default scale
//	aibench -fig 8 -rows 500000    # experiment 3 at the paper's full size
//	aibench -fig all -format plot  # every figure as ASCII plots
//	aibench -fig 3 -format tsv > fig3.tsv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/timeline"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 1, 3, 6, 7, 8, 9, bridge, corr, churn or all")
		rows       = flag.Int("rows", 50000, "table rows (paper: 500000)")
		queries    = flag.Int("queries", 200, "queries per experiment (paper: 200)")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "table", "output format: table, tsv or plot")
		step       = flag.Int("step", 10, "table output: print every step-th query")
		latency    = flag.Duration("latency", 0, "simulated device read latency (e.g. 100us); shapes wall-clock series")
		listen     = flag.String("listen", "", "serve /metrics and /timeline (current experiment) and /debug/pprof on this address")
		telemetry  = flag.String("telemetry", "", "stream structured telemetry (spans + timeline samples) as JSONL to this file")
		verify     = flag.String("verify-telemetry", "", "validate a telemetry JSONL file and exit (no experiments run)")
		robustness = flag.Bool("robustness", false, "run the workload-robustness scenario suite instead of figures")
		durability = flag.Bool("durability", false, "run the group-commit durability benchmark instead of figures")
		epoch      = flag.Bool("epoch", false, "run the contended-read epoch benchmark instead of figures")
		out        = flag.String("out", "", "robustness/durability/epoch: write the result as JSON to this file")
		baseline   = flag.String("baseline", "", "robustness/durability/epoch: compare against this committed baseline JSON and fail on regression")
	)
	flag.Parse()

	if *verify != "" {
		if err := verifyTelemetry(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: verify-telemetry:", err)
			os.Exit(1)
		}
		return
	}

	if *robustness {
		// The robustness matrix runs 15 engine setups, so it defaults to
		// its own smaller scale; -rows/-queries/-seed still win when given
		// explicitly.
		o := bench.Options{Seed: *seed}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "rows":
				o.Rows = *rows
			case "queries":
				o.Queries = *queries
			}
		})
		if err := runRobustness(o, *out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: robustness:", err)
			os.Exit(1)
		}
		return
	}

	if *durability {
		o := bench.Options{Seed: *seed}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				o.Queries = *queries
			}
		})
		if err := runDurability(o, *out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: durability:", err)
			os.Exit(1)
		}
		return
	}

	if *epoch {
		o := bench.Options{Seed: *seed}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				o.Queries = *queries
			}
		})
		if err := runEpoch(o, *out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: epoch:", err)
			os.Exit(1)
		}
		return
	}

	var sink *timeline.Sink
	var sinkFile *os.File
	if *telemetry != "" {
		f, err := os.Create(*telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibench: telemetry:", err)
			os.Exit(1)
		}
		sinkFile = f
		sink = timeline.NewSink(f)
	}

	// Experiments build their own engines; track the latest so /metrics
	// and /timeline follow whichever experiment is running, and so each
	// engine gets its telemetry wired up as it is created.
	var current atomic.Pointer[engine.Engine]
	observing := *listen != "" || sink != nil
	if observing {
		bench.SetEngineObserver(func(e *engine.Engine) {
			e.Tracer().EnableSpans(true)
			e.Timeline().Enable(true)
			if sink != nil {
				e.SetTelemetrySink(sink)
			}
			current.Store(e)
		})
	}

	var server *obs.Server
	var addr string
	if *listen != "" {
		server = obs.NewServer(current.Load)
		srv, boundAddr, err := server.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibench: listen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		addr = boundAddr
		fmt.Printf("observability: http://%s/metrics, /timeline and /debug/pprof/\n", addr)
	}

	opts := bench.Options{Rows: *rows, Queries: *queries, Seed: *seed, ReadLatency: *latency}
	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"1", "3", "6", "7", "8", "9", "bridge", "corr", "churn"}
	}
	for _, f := range figs {
		if err := run(f, opts, *format, *step); err != nil {
			fmt.Fprintf(os.Stderr, "aibench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		if observing {
			printConvergence(current.Load())
		}
	}

	failed := false
	if server != nil {
		if err := selfScrape(addr); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: self-scrape:", err)
			failed = true
		}
		if st := server.ScrapeStats(); st.Errors > 0 {
			fmt.Fprintf(os.Stderr, "aibench: %d of %d scrapes failed mid-stream\n", st.Errors, st.Scrapes)
			failed = true
		}
	}
	if sink != nil {
		st := sink.Stats()
		if err := sinkFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "aibench: telemetry:", err)
			failed = true
		}
		if st.Errors > 0 {
			fmt.Fprintf(os.Stderr, "aibench: telemetry: %d records dropped (last error: %v)\n", st.Errors, sink.Err())
			failed = true
		} else {
			fmt.Printf("telemetry: %d records -> %s\n", st.Lines, *telemetry)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runRobustness runs the scenario × selection-arm matrix, prints it,
// enforces the adversarial acceptance criterion, and optionally writes
// the JSON artifact and diffs it against a committed baseline.
func runRobustness(o bench.Options, out, baseline string) error {
	r, err := bench.RunRobustness(o)
	if err != nil {
		return err
	}
	fmt.Printf("== Workload robustness: %d rows, %d ops per cell, seed %d, target %.0f%% coverage ==\n",
		r.Rows, r.Ops, r.Seed, 100*r.Target)
	for _, sc := range r.Scenarios {
		fmt.Printf("%s:\n", sc.Scenario)
		for _, a := range sc.Arms {
			verdict := fmt.Sprintf("converged after %d ops", a.OpsToTarget)
			if !a.Achieved {
				verdict = fmt.Sprintf("NOT converged in %d ops (max coverage %.1f%%)", r.Ops, 100*a.MaxCoverage)
			}
			fmt.Printf("  %-14s %s\n", a.Arm, verdict)
		}
	}
	fmt.Println()

	if out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("robustness matrix -> %s\n", out)
	}
	if err := r.CheckAdversarial(); err != nil {
		return err
	}
	fmt.Println("adversarial criterion: ok (stochastic selection converges in <= half the deterministic arm's ops)")
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base bench.RobustnessResult
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		if regs := r.CompareBaseline(&base); len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintln(os.Stderr, "regression:", reg)
			}
			return fmt.Errorf("%d regression(s) vs baseline %s", len(regs), baseline)
		}
		fmt.Printf("baseline %s: no regressions\n", baseline)
	}
	return nil
}

// runDurability measures the group-commit arms, prints them, enforces
// the 2x speedup criterion, and optionally writes the JSON artifact and
// diffs it against a committed baseline.
func runDurability(o bench.Options, out, baseline string) error {
	r, err := bench.RunDurability(o)
	if err != nil {
		return err
	}
	fmt.Printf("== Group-commit durability: %d writers x %d commits, %dus simulated fsync ==\n",
		r.Workers, r.OpsPerWorker, r.SyncDelayMicros)
	for _, a := range r.Arms {
		fmt.Printf("  %-18s %8.0f ops/sec  (%d commits, %d fsyncs, batch factor %.2f)\n",
			a.Arm, a.OpsPerSec, a.Commits, a.Syncs, a.BatchFactor)
	}
	fmt.Printf("group-commit speedup: %.2fx\n\n", r.BatchSpeedup)

	if out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("durability result -> %s\n", out)
	}
	if err := r.Check(); err != nil {
		return err
	}
	fmt.Println("durability criterion: ok (group commit >= 2x fsync-per-commit)")
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base bench.DurabilityResult
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		if regs := r.CompareBaseline(&base); len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintln(os.Stderr, "regression:", reg)
			}
			return fmt.Errorf("%d regression(s) vs baseline %s", len(regs), baseline)
		}
		fmt.Printf("baseline %s: no regressions\n", baseline)
	}
	return nil
}

// runEpoch measures both read-path arms under an active writer, prints
// them, enforces the 2x read-speedup criterion, and optionally writes
// the JSON artifact and diffs it against a committed baseline.
func runEpoch(o bench.Options, out, baseline string) error {
	r, err := bench.RunEpoch(o)
	if err != nil {
		return err
	}
	fmt.Printf("== Epoch read path: %d readers x %d covered reads, one writer, %dus simulated fsync ==\n",
		r.Readers, r.ReadsPerReader, r.SyncDelayMicros)
	for _, a := range r.Arms {
		fmt.Printf("  %-8s %10.0f reads/sec  (%d reads, %d writer commits, %d fast hits, %d fallbacks)\n",
			a.Arm, a.ReadsPerSec, a.Reads, a.Writes, a.FastHits, a.Fallbacks)
	}
	fmt.Printf("contended read speedup: %.2fx\n\n", r.ReadSpeedup)

	if out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("epoch result -> %s\n", out)
	}
	if err := r.Check(); err != nil {
		return err
	}
	fmt.Println("epoch criterion: ok (lock-free reads >= 2x the RWMutex arm under a committing writer)")
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			return err
		}
		var base bench.EpochResult
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		if regs := r.CompareBaseline(&base); len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintln(os.Stderr, "regression:", reg)
			}
			return fmt.Errorf("%d regression(s) vs baseline %s", len(regs), baseline)
		}
		fmt.Printf("baseline %s: no regressions\n", baseline)
	}
	return nil
}

// printConvergence summarizes the just-finished experiment's timeline
// verdicts — the paper-shaped "queries to X% coverage" readout.
func printConvergence(e *engine.Engine) {
	if e == nil {
		return
	}
	convs := e.Convergence()
	if len(convs) == 0 {
		return
	}
	fmt.Println("convergence:")
	for _, c := range convs {
		switch {
		case c.Achieved && c.Regressed:
			fmt.Printf("  %-20s reached %.0f%% coverage after %d queries, then REGRESSED (now %.1f%%)\n",
				c.Buffer, 100*c.Target, c.QueriesToTarget, 100*c.Coverage)
		case c.Achieved:
			fmt.Printf("  %-20s reached %.0f%% coverage after %d queries (now %.1f%%)\n",
				c.Buffer, 100*c.Target, c.QueriesToTarget, 100*c.Coverage)
		default:
			fmt.Printf("  %-20s below the %.0f%% target: %.1f%% after %d queries (max %.1f%%)\n",
				c.Buffer, 100*c.Target, 100*c.Coverage, c.Queries, 100*c.MaxCoverage)
		}
	}
	fmt.Println()
}

// selfScrape hits the run's own /metrics and /timeline once after the
// experiments finish, so a CI smoke run fails loudly when either
// endpoint stops parsing or serving.
func selfScrape(addr string) error {
	for _, path := range []string{"/metrics", "/timeline", "/healthz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %s", path, resp.Status)
		}
	}
	return nil
}

// verifyTelemetry decodes every record of a JSONL telemetry file and
// applies basic sanity rules: coverage within [0, 1], skippable pages
// within the total, per-buffer query ordinals non-decreasing, span
// kinds non-empty. Any malformed line fails the whole file.
func verifyTelemetry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, spans := 0, 0
	lastQuery := make(map[string]uint64)
	n, err := timeline.ScanRecords(f,
		func(rec timeline.SampleRecord) error {
			samples++
			if rec.Buffer == "" {
				return fmt.Errorf("sample without buffer")
			}
			if rec.Coverage < 0 || rec.Coverage > 1 {
				return fmt.Errorf("buffer %s: coverage %g outside [0, 1]", rec.Buffer, rec.Coverage)
			}
			if rec.Skippable > rec.TotalPages {
				return fmt.Errorf("buffer %s: %d skippable of %d pages", rec.Buffer, rec.Skippable, rec.TotalPages)
			}
			if rec.Query < lastQuery[rec.Buffer] {
				return fmt.Errorf("buffer %s: query ordinal went backwards (%d after %d)", rec.Buffer, rec.Query, lastQuery[rec.Buffer])
			}
			lastQuery[rec.Buffer] = rec.Query
			return nil
		},
		func(rec timeline.SpanRecord) error {
			spans++
			if rec.Kind == "" {
				return fmt.Errorf("span without kind")
			}
			return nil
		})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%s: no records", path)
	}
	fmt.Printf("telemetry ok: %d records (%d samples, %d spans) in %s\n", n, samples, spans, path)
	return nil
}

func run(fig string, opts bench.Options, format string, step int) error {
	switch fig {
	case "1":
		fmt.Println("== Figure 1: control loop delay of adaptive partial indexing ==")
		r := bench.RunFig1(bench.DefaultFig1Options())
		emit(r.Frame(), format, step)
		fmt.Printf("summary: hit rate pre-shift %.2f, during shift %.2f, recovered %.2f\n\n",
			r.HitRate.MeanRange(150, 200), r.HitRate.MeanRange(300, 340), r.HitRate.MeanRange(450, 500))

	case "3":
		fmt.Println("== Figure 3: share of fully indexed pages vs. order correlation ==")
		o := bench.DefaultFig3Options()
		r, err := bench.RunFig3(o)
		if err != nil {
			return err
		}
		emit(r.Frame(), format, 1)
		fmt.Println("summary: rows are correlation 1.00 down to 0.00 in 0.05 steps")
		fmt.Println()

	case "6":
		fmt.Println("== Figure 6: single Index Buffer, unlimited space (experiment 1) ==")
		r, err := bench.RunFig6(opts)
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		fmt.Printf("summary: table %d pages; query cost %0.f pages initially, %.1f after build-out; buffer ends at %d entries\n",
			r.TablePages, r.PagesRead.Y[0], r.PagesRead.MeanRange(r.PagesRead.Len()/2, r.PagesRead.Len()), int(r.Entries.Y[r.Entries.Len()-1]))
		fmt.Printf("wall-clock: %s\n\n", r.WallSummary())

	case "7":
		fmt.Println("== Figure 7: varying I^MAX and Index Buffer Space size (experiment 2) ==")
		r, err := bench.RunFig7(opts, nil)
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		fmt.Printf("summary: table %d pages; late per-query cost per configuration:\n", r.TablePages)
		for _, c := range r.Curves {
			fmt.Printf("  %-22s %8.1f pages\n", c.Config.Label(), c.PagesRead.MeanRange(c.PagesRead.Len()/2, c.PagesRead.Len()))
		}
		fmt.Println()

	case "8":
		fmt.Println("== Figure 8: three Index Buffers with limited space (experiment 3) ==")
		r, err := bench.RunFig8(opts)
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		n := r.Entries[0].Len()
		fmt.Printf("summary: space limit %d entries; occupancy A/B/C: first period %0.f/%0.f/%0.f, second period %0.f/%0.f/%0.f\n\n",
			r.SpaceLimit,
			r.Entries[0].MeanRange(n/4, n/2), r.Entries[1].MeanRange(n/4, n/2), r.Entries[2].MeanRange(n/4, n/2),
			r.Entries[0].MeanRange(3*n/4, n), r.Entries[1].MeanRange(3*n/4, n), r.Entries[2].MeanRange(3*n/4, n))

	case "9":
		fmt.Println("== Figure 9: limited space with partial index hits on column A (experiment 4) ==")
		r, err := bench.RunFig9(opts)
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		n := r.Entries[0].Len()
		fmt.Printf("summary: space limit %d entries; A's occupancy %0.f (80%% hits) -> %0.f (20%% hits)\n\n",
			r.SpaceLimit, r.Entries[0].MeanRange(n/4, n/2), r.Entries[0].MeanRange(3*n/4, n))

	case "bridge":
		fmt.Println("== Bridge (extension): Index Buffer covering the adaptation gap ==")
		r, err := bench.RunBridge(bench.BridgeOptions{Rows: opts.Rows, Queries: opts.Queries, Seed: opts.Seed})
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		base, adapt, adaptBuf := r.Cumulative()
		fmt.Printf("summary: partial index adapted at query %d; cumulative pages read: baseline %.0f, adapt-only %.0f, adapt+buffer %.0f (%.1fx saved vs baseline)\n\n",
			r.AdaptedAt, base, adapt, adaptBuf, base/adaptBuf)

	case "corr":
		fmt.Println("== Correlation (extension): Fig. 3's argument inside the engine ==")
		r, err := bench.RunCorrelation(bench.CorrelationOptions{Rows: opts.Rows / 2, Seed: opts.Seed})
		if err != nil {
			return err
		}
		emit(r.Frame(), format, 1)
		fmt.Println("summary: per correlation level — pages skippable via the partial index alone, and the buffer cost of full skip coverage:")
		for _, p := range r.Points {
			fmt.Printf("  corr %.2f: natural skip share %.1f%%, buffer completes %d pages with %d entries, steady cost %.1f pages/query\n",
				p.Measured, 100*p.NaturalSkipShare, p.BufferedPages, p.BufferEntries, p.SteadyMissPages)
		}
		fmt.Println()

	case "churn":
		fmt.Println("== Churn (extension): Table I maintenance under mixed query/DML ==")
		r, err := bench.RunChurn(bench.ChurnOptions{Rows: opts.Rows / 2, Operations: 2 * opts.Queries, Seed: opts.Seed})
		if err != nil {
			return err
		}
		emit(r.Frame(), format, step)
		n := r.QueryPages.Len()
		fmt.Printf("summary: %d queries interleaved with %d DML ops; query cost %0.f pages initially, %.1f in the second half\n\n",
			r.Queries, r.DML, r.QueryPages.Y[0], r.QueryPages.MeanRange(n/2, n))

	default:
		return fmt.Errorf("unknown figure %q (want 1, 3, 6, 7, 8, 9, bridge, corr, churn or all)", fig)
	}
	return nil
}

func emit(f *metrics.Frame, format string, step int) {
	switch format {
	case "tsv":
		_ = f.WriteTSV(os.Stdout)
	case "plot":
		fmt.Print(f.ASCIIPlot(80, 16))
	default:
		_ = f.WriteTable(os.Stdout, step)
	}
}
