// Command aibdemo walks through the paper's running example (Figures 2
// and 4): a flights table with a partial index on U.S. airports, a query
// for Frankfurt that misses the index and pays a full scan, and the Index
// Buffer turning the repeat query into page skips. It prints each step's
// cost so the mechanism is visible.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro"
)

func main() {
	rows := flag.Int("rows", 20000, "flights to load")
	flag.Parse()
	if err := run(*rows); err != nil {
		fmt.Fprintln(os.Stderr, "aibdemo:", err)
		os.Exit(1)
	}
}

// The demo uses a realistic airport cardinality (a few hundred per
// region) so queries are selective: a handful of matching tuples spread
// over a handful of pages, as in the paper's setup. The familiar codes
// head each list; the rest are synthetic.
var (
	usAirports = genAirports([]string{"ORD", "JFK", "LAX", "SFO", "ATL", "DFW"}, 'U', 250)
	euAirports = genAirports([]string{"FRA", "MUC", "HEL", "TXL", "CDG", "AMS"}, 'E', 250)
)

func genAirports(known []string, prefix byte, n int) []string {
	out := append([]string(nil), known...)
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("%c%c%c", prefix, 'A'+(i/26)%26, 'A'+i%26))
	}
	return out
}

func run(rows int) error {
	db, err := repro.Open(repro.Options{Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "aibdemo:", err)
		os.Exit(1)
	}
	flights, err := db.CreateTable("flights",
		repro.StringColumn("airport"),
		repro.Int64Column("delay"),
		repro.StringColumn("details"),
	)
	if err != nil {
		return err
	}

	fmt.Printf("Loading %d flights (half U.S., half European airports)...\n", rows)
	rng := rand.New(rand.NewSource(7))
	pad := strings.Repeat("d", 300)
	for i := 0; i < rows; i++ {
		var airport string
		if i%2 == 0 {
			airport = usAirports[rng.Intn(len(usAirports))]
		} else {
			airport = euAirports[rng.Intn(len(euAirports))]
		}
		if _, err := flights.Insert(airport, int64(rng.Intn(180)), pad); err != nil {
			return err
		}
	}
	fmt.Printf("Table occupies %d pages.\n\n", flights.NumPages())

	fmt.Println("Creating a partial index covering only U.S. airports")
	fmt.Println("(the provider mainly sells reports to U.S. airports — paper §II).")
	if err := flights.CreatePartialSetIndex("airport",
		anySlice(usAirports)...); err != nil {
		return err
	}

	q := func(airport string) error {
		rows, stats, err := flights.Query("airport", airport)
		if err != nil {
			return err
		}
		mech := "INDEXING TABLE SCAN (Algorithm 1)"
		if stats.PartialHit {
			mech = "partial index hit"
		}
		fmt.Printf("  query %-4s -> %5d rows | %s | %5d pages read, %5d skipped, %5d buffer entries added\n",
			airport, len(rows), mech, stats.PagesRead, stats.PagesSkipped, stats.EntriesAdded)
		return nil
	}

	fmt.Println("\nQuery for Chicago O'Hare — covered by the partial index:")
	if err := q("ORD"); err != nil {
		return err
	}

	fmt.Println("\nSuddenly the provider creates reports for German airports (workload change).")
	fmt.Println("First query for Frankfurt misses the partial index and scans the table,")
	fmt.Println("building the Index Buffer along the way:")
	if err := q("FRA"); err != nil {
		return err
	}

	fmt.Println("\nRepeat queries on uncovered airports now skip fully indexed pages:")
	for _, a := range []string{"FRA", "MUC", "HEL"} {
		if err := q(a); err != nil {
			return err
		}
	}

	fmt.Println("\nIndex Buffer state:")
	for _, b := range db.BufferStats() {
		fmt.Printf("  %s: %d entries in %d partitions covering %d pages (benefit %.1f)\n",
			b.Name, b.Entries, b.Partitions, b.BufferedPages, b.Benefit)
	}
	return nil
}

func anySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
