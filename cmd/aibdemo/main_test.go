package main

import (
	"os"
	"testing"
)

// TestDemoRuns drives the full demo narrative at a small scale.
func TestDemoRuns(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := run(3000); err != nil {
		t.Fatal(err)
	}
}

func TestGenAirports(t *testing.T) {
	got := genAirports([]string{"ORD"}, 'U', 30)
	if len(got) != 30 || got[0] != "ORD" {
		t.Fatalf("genAirports = %v", got[:3])
	}
	seen := map[string]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate airport %q", a)
		}
		seen[a] = true
	}
}
