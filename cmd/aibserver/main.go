// Command aibserver is the multi-tenant network front end: a TCP server
// whose line-oriented protocol executes shell statements through the
// repro.DB.Exec front door, one JSON response per line. Connections
// bind to a tenant with the TENANT handshake; each tenant's misses
// compete for Index Buffer entries within its own quota before the
// global Space.
//
//	$ aibserver -addr 127.0.0.1:7475 -space 100000 \
//	    -tenants 'acme:60000,initech:30000:strict'
//	$ printf 'TENANT acme\nCREATE TABLE t (a INT, p VARCHAR)\n' | nc 127.0.0.1 7475
//	{"ok":true,"output":"tenant acme"}
//	{"ok":true,"output":"created table t (a INT, p VARCHAR)"}
//
// With -obs the Prometheus /metrics and /timeline endpoints are served
// on a second address; per-tenant families (aib_tenant_entries_used,
// aib_tenant_degraded_total, ...) report every tenant's ledger, and
// /timeline?tenant=acme filters the adaptation timeline to one tenant.
// SIGINT/SIGTERM drains gracefully: in-flight statements finish (up to
// the grace period), then connections close.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "TCP listen address for the statement protocol")
	obsAddr := flag.String("obs", "", "serve /metrics, /timeline and /debug/pprof on this address (also enables timeline sampling)")
	workers := flag.Int("workers", 0, "max concurrently executing statements (0 = 4×GOMAXPROCS)")
	tenants := flag.String("tenants", "", "comma-separated tenant specs name:quota[:strict], e.g. 'acme:60000,initech:30000:strict'")
	space := flag.Int("space", 0, "global Index Buffer Space limit in entries (0 = unlimited)")
	data := flag.String("data", "", "directory for persistent storage (reopened if a catalog exists)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight statements")
	flag.Parse()

	specs, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aibserver:", err)
		os.Exit(2)
	}
	opts := repro.Options{SpaceLimit: *space, DataDir: *data, Tenants: specs}
	db, err := open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aibserver: open:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *obsAddr != "" {
		srv, bound, err := serveObs(db, *obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aibserver: obs listen:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics, /timeline?tenant=<name>, /healthz and /debug/queries?trace=<id>\n", bound)
	}

	srv := server.New(db, server.Config{Addr: *addr, Workers: *workers})
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aibserver: listen:", err)
		os.Exit(1)
	}
	fmt.Printf("aibserver listening on %s (%d tenants)\n", bound, len(specs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("aibserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aibserver: forced shutdown:", err)
	}
	fmt.Printf("aibserver: served %d statements (%d errors)\n", srv.Statements(), srv.Errors())
}

// open reopens a DataDir-backed catalog when one exists, else starts
// fresh — the same fallback aibshell uses.
func open(opts repro.Options) (*repro.DB, error) {
	if opts.DataDir != "" {
		if db, err := repro.OpenExisting(opts); err == nil {
			fmt.Println("reopened database from", opts.DataDir)
			return db, nil
		}
	}
	return repro.Open(opts)
}

// serveObs mounts db.MetricsHandler on its own HTTP listener and turns
// on timeline sampling, span recording and the per-statement flight
// recorder, so /timeline, /debug/queries and SHOW SLOW have data.
func serveObs(db *repro.DB, addr string) (interface{ Close() error }, string, error) {
	db.EnableTimeline(true)
	db.EnableTraceEvents(true)
	db.EnableFlightRecorder(0)
	return db.ServeMetrics(addr)
}

// parseTenants decodes the -tenants flag: "name:quota[:strict]" specs
// separated by commas.
func parseTenants(s string) ([]repro.Tenant, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []repro.Tenant
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name:quota[:strict])", spec)
		}
		quota, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad tenant quota in %q: %v", spec, err)
		}
		t := repro.Tenant{Name: parts[0], Quota: quota}
		if len(parts) == 3 {
			if parts[2] != "strict" {
				return nil, fmt.Errorf("bad tenant modifier %q in %q (want strict)", parts[2], spec)
			}
			t.Strict = true
		}
		out = append(out, t)
	}
	return out, nil
}
