package repro

import "repro/internal/engine"

// Sentinel errors of the public API. They are wrapped with situational
// detail (table, column names) at the return sites, so match them with
// errors.Is:
//
//	if _, _, err := t.Query("nope", 1); errors.Is(err, repro.ErrNoColumn) {
//		...
//	}
var (
	// ErrNoColumn is returned when a query, DML call or index operation
	// names a column the table does not have.
	ErrNoColumn = engine.ErrNoColumn
	// ErrNoIndex is returned by index operations (redefine, drop) on a
	// column that carries no partial index.
	ErrNoIndex = engine.ErrNoIndex
	// ErrDuplicateIndex is returned when creating a partial index on a
	// column that already has one.
	ErrDuplicateIndex = engine.ErrDuplicateIndex
	// ErrDuplicateTable is returned by CreateTable for a taken name.
	ErrDuplicateTable = engine.ErrDuplicateTable
	// ErrClosed is returned by every operation after DB.Close.
	ErrClosed = engine.ErrClosed
	// ErrQuotaExceeded is returned when a strict tenant's miss needs an
	// indexing scan but the tenant's Index-Buffer quota is exhausted
	// (non-strict tenants degrade to unindexed scans instead).
	ErrQuotaExceeded = engine.ErrQuotaExceeded
	// ErrTenantUnknown is returned when a session or statement names a
	// tenant that was never registered.
	ErrTenantUnknown = engine.ErrTenantUnknown
)
